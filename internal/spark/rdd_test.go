package spark

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func testCtx() *Context {
	return NewContext(Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 100, MaxConcurrency: 4})
}

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeRoundTrip(t *testing.T) {
	ctx := testCtx()
	data := ints(17)
	r := Parallelize(ctx, data)
	if got := r.Collect(); !reflect.DeepEqual(got, data) {
		t.Fatalf("Collect = %v, want %v", got, data)
	}
	if r.Count() != 17 {
		t.Fatalf("Count = %d, want 17", r.Count())
	}
	if r.NumPartitions() != 4 {
		t.Fatalf("NumPartitions = %d, want 4", r.NumPartitions())
	}
}

func TestParallelizeEmptyAndSingle(t *testing.T) {
	ctx := testCtx()
	if got := Parallelize(ctx, []int{}).Count(); got != 0 {
		t.Fatalf("empty Count = %d", got)
	}
	if got := ParallelizeN(ctx, []int{42}, 8).Collect(); !reflect.DeepEqual(got, []int{42}) {
		t.Fatalf("single = %v", got)
	}
	if got := ParallelizeN(ctx, ints(3), 0).NumPartitions(); got != 1 {
		t.Fatalf("n=0 partitions = %d, want 1", got)
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, ints(10))
	doubled := Map(r, func(v int) int { return v * 2 })
	if got := doubled.Collect()[9]; got != 18 {
		t.Fatalf("Map last = %d, want 18", got)
	}
	even := r.Filter(func(v int) bool { return v%2 == 0 })
	if got := even.Count(); got != 5 {
		t.Fatalf("Filter count = %d, want 5", got)
	}
	dup := FlatMap(r, func(v int) []int { return []int{v, v} })
	if got := dup.Count(); got != 20 {
		t.Fatalf("FlatMap count = %d, want 20", got)
	}
}

func TestRDDImmutability(t *testing.T) {
	ctx := testCtx()
	data := ints(8)
	r := Parallelize(ctx, data)
	_ = Map(r, func(v int) int { return v + 100 })
	_ = r.Filter(func(v int) bool { return v > 3 })
	if got := r.Collect(); !reflect.DeepEqual(got, ints(8)) {
		t.Fatalf("source RDD mutated: %v", got)
	}
	// Mutating the caller's slice must not affect the RDD.
	data[0] = 999
	if got := r.Collect()[0]; got != 0 {
		t.Fatalf("RDD shares caller storage: got %d", got)
	}
}

func TestUnionAndTake(t *testing.T) {
	ctx := testCtx()
	a := Parallelize(ctx, []int{1, 2})
	b := Parallelize(ctx, []int{3, 4})
	u := a.Union(b)
	if got := u.Count(); got != 4 {
		t.Fatalf("Union count = %d", got)
	}
	if got := u.Take(3); len(got) != 3 {
		t.Fatalf("Take(3) = %v", got)
	}
	if got := u.Take(99); len(got) != 4 {
		t.Fatalf("Take(99) = %v", got)
	}
}

func TestDistinct(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, []int{3, 1, 3, 2, 1, 3})
	got := Distinct(r).Collect()
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("Distinct = %v", got)
	}
}

func TestSortBy(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, []int{5, 3, 9, 1, 7})
	got := SortBy(r, func(v int) int { return v }).Collect()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("SortBy result not sorted: %v", got)
	}
	desc := SortBy(r, func(v int) int { return -v }).Collect()
	if desc[0] != 9 {
		t.Fatalf("descending sort head = %d", desc[0])
	}
}

func TestCartesian(t *testing.T) {
	ctx := testCtx()
	a := Parallelize(ctx, []int{1, 2})
	b := Parallelize(ctx, []string{"x", "y", "z"})
	got := Cartesian(a, b).Count()
	if got != 6 {
		t.Fatalf("Cartesian count = %d, want 6", got)
	}
}

func TestKeyByAndJoin(t *testing.T) {
	ctx := testCtx()
	people := Parallelize(ctx, []string{"ann:1", "bob:2", "cid:1"})
	depts := Parallelize(ctx, []string{"1:eng", "2:sales"})
	key := func(s string) string {
		for i := len(s) - 1; i >= 0; i-- {
			if s[i] == ':' {
				return s[i+1:]
			}
		}
		return s
	}
	left := KeyBy(people, key)
	right := KeyBy(depts, func(s string) string {
		for i := 0; i < len(s); i++ {
			if s[i] == ':' {
				return s[:i]
			}
		}
		return s
	})
	joined := Join(left, right).Collect()
	if len(joined) != 3 {
		t.Fatalf("join size = %d, want 3", len(joined))
	}
	for _, rec := range joined {
		if key(rec.Value.A) != rec.Key {
			t.Fatalf("join key mismatch: %v", rec)
		}
	}
}

func TestJoinEmptySides(t *testing.T) {
	ctx := testCtx()
	empty := Parallelize(ctx, []Pair[int, string]{})
	full := Parallelize(ctx, []Pair[int, string]{{1, "a"}})
	if got := Join(empty, full).Count(); got != 0 {
		t.Fatalf("join with empty left = %d", got)
	}
	if got := Join(full, empty).Count(); got != 0 {
		t.Fatalf("join with empty right = %d", got)
	}
}

func TestLeftOuterJoin(t *testing.T) {
	ctx := testCtx()
	a := Parallelize(ctx, []Pair[int, string]{{1, "a"}, {2, "b"}})
	b := Parallelize(ctx, []Pair[int, string]{{1, "x"}})
	got := LeftOuterJoin(a, b).Collect()
	if len(got) != 2 {
		t.Fatalf("leftOuterJoin size = %d, want 2", len(got))
	}
	matched, unmatched := 0, 0
	for _, rec := range got {
		if rec.Value.B.OK {
			matched++
			if rec.Key != 1 || rec.Value.B.Val != "x" {
				t.Fatalf("bad match: %v", rec)
			}
		} else {
			unmatched++
			if rec.Key != 2 {
				t.Fatalf("bad unmatched: %v", rec)
			}
		}
	}
	if matched != 1 || unmatched != 1 {
		t.Fatalf("matched=%d unmatched=%d", matched, unmatched)
	}
}

func TestBroadcastJoinMatchesPartitionedJoin(t *testing.T) {
	ctx := testCtx()
	large := Parallelize(ctx, []Pair[int, int]{{1, 10}, {2, 20}, {1, 11}, {3, 30}})
	small := Parallelize(ctx, []Pair[int, string]{{1, "one"}, {3, "three"}, {4, "four"}})

	canon := func(ps []Pair[int, Tuple2[int, string]]) []string {
		out := make([]string, 0, len(ps))
		for _, p := range ps {
			out = append(out, string(rune('0'+p.Key))+":"+string(rune('0'+p.Value.A%10))+p.Value.B)
		}
		sort.Strings(out)
		return out
	}
	pj := canon(Join(large, small).Collect())
	bj := canon(BroadcastJoin(large, small).Collect())
	if !reflect.DeepEqual(pj, bj) {
		t.Fatalf("broadcast join %v != partitioned join %v", bj, pj)
	}
}

func TestReduceByKeyAndCountByKey(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, []Pair[string, int]{{"a", 1}, {"b", 2}, {"a", 3}, {"a", 5}})
	sums := ReduceByKey(r, func(x, y int) int { return x + y }).Collect()
	m := map[string]int{}
	for _, p := range sums {
		m[p.Key] = p.Value
	}
	if m["a"] != 9 || m["b"] != 2 {
		t.Fatalf("ReduceByKey = %v", m)
	}
	counts := CountByKey(r)
	if counts["a"] != 3 || counts["b"] != 1 {
		t.Fatalf("CountByKey = %v", counts)
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, []Pair[string, int]{{"a", 1}, {"a", 2}, {"b", 3}})
	got := GroupByKey(r).Collect()
	m := map[string][]int{}
	for _, p := range got {
		vs := append([]int(nil), p.Value...)
		sort.Ints(vs)
		m[p.Key] = vs
	}
	if !reflect.DeepEqual(m["a"], []int{1, 2}) || !reflect.DeepEqual(m["b"], []int{3}) {
		t.Fatalf("GroupByKey = %v", m)
	}
}

func TestCoGroup(t *testing.T) {
	ctx := testCtx()
	a := Parallelize(ctx, []Pair[int, string]{{1, "a"}, {2, "b"}})
	b := Parallelize(ctx, []Pair[int, string]{{1, "x"}, {3, "y"}})
	got := CoGroup(a, b).Collect()
	byKey := map[int]Tuple2[[]string, []string]{}
	for _, p := range got {
		byKey[p.Key] = p.Value
	}
	if len(byKey) != 3 {
		t.Fatalf("cogroup keys = %d, want 3", len(byKey))
	}
	if len(byKey[1].A) != 1 || len(byKey[1].B) != 1 {
		t.Fatalf("cogroup key 1 = %v", byKey[1])
	}
	if len(byKey[3].A) != 0 || len(byKey[3].B) != 1 {
		t.Fatalf("cogroup key 3 = %v", byKey[3])
	}
}

func TestPartitionByPlacesKeysDeterministically(t *testing.T) {
	ctx := testCtx()
	data := make([]Pair[string, int], 0, 100)
	for i := 0; i < 100; i++ {
		data = append(data, Pair[string, int]{Key: string(rune('a' + i%26)), Value: i})
	}
	p := NewHashPartitioner[string](5)
	r1 := PartitionBy(Parallelize(ctx, data), p)
	r2 := PartitionBy(Parallelize(ctx, data), p)
	for i := 0; i < 5; i++ {
		if !reflect.DeepEqual(r1.Partition(i), r2.Partition(i)) {
			t.Fatalf("partitioning not deterministic at %d", i)
		}
	}
	// Every record must sit on the partition its key hashes to.
	for i := 0; i < 5; i++ {
		for _, rec := range r1.Partition(i) {
			if p.Partition(rec.Key) != i {
				t.Fatalf("record %v on wrong partition %d", rec, i)
			}
		}
	}
	if !IsKeyPartitioned(r1) {
		t.Fatal("PartitionBy must mark RDD as key-partitioned")
	}
}

func TestShuffleMetering(t *testing.T) {
	ctx := testCtx()
	data := make([]Pair[int, int], 1000)
	for i := range data {
		data[i] = Pair[int, int]{i, i}
	}
	r := Parallelize(ctx, data)
	before := ctx.Snapshot()
	_ = PartitionBy(r, NewHashPartitioner[int](4))
	d := ctx.Snapshot().Diff(before)
	if d.ShuffleRecords != 1000 {
		t.Fatalf("shuffle records = %d, want 1000", d.ShuffleRecords)
	}
	if d.Stages != 1 {
		t.Fatalf("stages = %d, want 1", d.Stages)
	}
	if d.ShuffleBytes <= 0 {
		t.Fatalf("shuffle bytes = %d, want > 0", d.ShuffleBytes)
	}
}

func TestBroadcastJoinAvoidsShuffle(t *testing.T) {
	ctx := testCtx()
	large := make([]Pair[int, int], 5000)
	for i := range large {
		large[i] = Pair[int, int]{i % 50, i}
	}
	small := make([]Pair[int, string], 10)
	for i := range small {
		small[i] = Pair[int, string]{i, "v"}
	}
	lr := Parallelize(ctx, large)
	sr := Parallelize(ctx, small)

	before := ctx.Snapshot()
	_ = BroadcastJoin(lr, sr)
	d := ctx.Snapshot().Diff(before)
	if d.ShuffleRecords != 0 {
		t.Fatalf("broadcast join shuffled %d records", d.ShuffleRecords)
	}
	if d.BroadcastRecords != int64(10*ctx.Conf().Executors) {
		t.Fatalf("broadcast records = %d", d.BroadcastRecords)
	}

	before = ctx.Snapshot()
	_ = Join(lr, sr)
	d = ctx.Snapshot().Diff(before)
	if d.ShuffleRecords == 0 {
		t.Fatal("partitioned join must shuffle")
	}
}

func TestCoPartitionedJoinSkipsShuffle(t *testing.T) {
	ctx := testCtx()
	mk := func(n int) []Pair[int, int] {
		out := make([]Pair[int, int], n)
		for i := range out {
			out[i] = Pair[int, int]{i % 9, i}
		}
		return out
	}
	p := NewHashPartitioner[int](4)
	a := PartitionBy(ParallelizeN(ctx, mk(100), 4), p)
	b := PartitionBy(ParallelizeN(ctx, mk(40), 4), p)
	before := ctx.Snapshot()
	_ = Join(a, b)
	d := ctx.Snapshot().Diff(before)
	if d.ShuffleRecords != 0 {
		t.Fatalf("co-partitioned join shuffled %d records, want 0", d.ShuffleRecords)
	}
}

func TestMetricsReset(t *testing.T) {
	ctx := testCtx()
	_ = Parallelize(ctx, ints(10))
	if ctx.Snapshot().RecordsRead == 0 {
		t.Fatal("expected reads")
	}
	ctx.ResetMetrics()
	if ctx.Snapshot() != (Metrics{}) {
		t.Fatalf("reset left %+v", ctx.Snapshot())
	}
}

func TestHashPartitionerProperties(t *testing.T) {
	// Property: partition index always in range, and stable.
	f := func(keys []string, n uint8) bool {
		parts := int(n%16) + 1
		p := NewHashPartitioner[string](parts)
		for _, k := range keys {
			i := p.Partition(k)
			if i < 0 || i >= parts {
				return false
			}
			if i != p.Partition(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceByKeyMatchesSequential(t *testing.T) {
	// Property: distributed sum-by-key equals a plain map fold.
	f := func(keys []uint8, vals []int16) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		data := make([]Pair[uint8, int], 0, n)
		want := map[uint8]int{}
		for i := 0; i < n; i++ {
			data = append(data, Pair[uint8, int]{keys[i], int(vals[i])})
			want[keys[i]] += int(vals[i])
		}
		ctx := testCtx()
		got := map[uint8]int{}
		for _, p := range ReduceByKey(Parallelize(ctx, data), func(a, b int) int { return a + b }).Collect() {
			got[p.Key] = p.Value
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinMatchesNestedLoop(t *testing.T) {
	// Property: the partitioned join equals a reference nested-loop join.
	f := func(lk, rk []uint8) bool {
		left := make([]Pair[uint8, int], len(lk))
		for i, k := range lk {
			left[i] = Pair[uint8, int]{k, i}
		}
		right := make([]Pair[uint8, int], len(rk))
		for i, k := range rk {
			right[i] = Pair[uint8, int]{k, i + 1000}
		}
		want := map[[3]int]int{}
		for _, l := range left {
			for _, r := range right {
				if l.Key == r.Key {
					want[[3]int{int(l.Key), l.Value, r.Value}]++
				}
			}
		}
		ctx := testCtx()
		got := map[[3]int]int{}
		joined := Join(Parallelize(ctx, left), Parallelize(ctx, right))
		for _, p := range joined.Collect() {
			got[[3]int{int(p.Key), p.Value.A, p.Value.B}]++
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFuncPartitionerClamping(t *testing.T) {
	p := FuncPartitioner[int]{N: 4, Name: "mod", Fn: func(k int) int { return -k }}
	for k := 0; k < 20; k++ {
		i := p.Partition(k)
		if i < 0 || i >= 4 {
			t.Fatalf("partition out of range: %d", i)
		}
	}
	if p.Describe() != "mod" {
		t.Fatalf("Describe = %q", p.Describe())
	}
}

func TestBroadcastVariable(t *testing.T) {
	ctx := testCtx()
	b := NewBroadcast(ctx, []int{1, 2, 3})
	if len(b.Value()) != 3 {
		t.Fatalf("broadcast value = %v", b.Value())
	}
	if got := ctx.Snapshot().BroadcastRecords; got != int64(3*ctx.Conf().Executors) {
		t.Fatalf("broadcast records = %d", got)
	}
}

func TestMapPartitions(t *testing.T) {
	ctx := testCtx()
	r := ParallelizeN(ctx, ints(10), 2)
	sums := MapPartitions(r, func(part []int) []int {
		s := 0
		for _, v := range part {
			s += v
		}
		return []int{s}
	})
	total := 0
	for _, v := range sums.Collect() {
		total += v
	}
	if total != 45 {
		t.Fatalf("partition sums total = %d, want 45", total)
	}
	if sums.NumPartitions() != 2 {
		t.Fatalf("partitions = %d", sums.NumPartitions())
	}
}

func TestFaultInjectionPreservesResults(t *testing.T) {
	data := make([]Pair[int, int], 500)
	for i := range data {
		data[i] = Pair[int, int]{i % 20, i}
	}
	compute := func(ctx *Context) map[int]int {
		r := Parallelize(ctx, data)
		sums := ReduceByKey(r, func(a, b int) int { return a + b })
		out := map[int]int{}
		for _, p := range sums.Collect() {
			out[p.Key] = p.Value
		}
		return out
	}
	clean := compute(testCtx())

	faulty := testCtx()
	faulty.InjectFaults(NewFaultPlan(0.3, 42))
	got := compute(faulty)
	if !reflect.DeepEqual(got, clean) {
		t.Fatalf("results changed under fault injection:\n%v\n%v", got, clean)
	}
	if faulty.TaskRetries() == 0 {
		t.Fatal("no retries recorded at 30% failure rate")
	}
}

func TestFaultInjectionStageAbort(t *testing.T) {
	ctx := testCtx()
	// Failure rate 1.0: every attempt fails, so the stage must abort.
	ctx.InjectFaults(NewFaultPlan(1.0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected stage abort panic")
		}
	}()
	_ = Map(Parallelize(ctx, ints(10)), func(v int) int { return v })
}

func TestFaultPlanDeterministic(t *testing.T) {
	run := func() int64 {
		ctx := testCtx()
		ctx.InjectFaults(NewFaultPlan(0.5, 99))
		_ = Map(Parallelize(ctx, ints(200)), func(v int) int { return v + 1 })
		return ctx.TaskRetries()
	}
	if run() != run() {
		t.Fatal("fault plan not deterministic for equal seeds")
	}
}

func TestRangePartitioner(t *testing.T) {
	keys := ints(100)
	p := NewRangePartitioner(keys, 4)
	if p.NumPartitions() != 4 {
		t.Fatalf("partitions = %d", p.NumPartitions())
	}
	// Order-preserving: a larger key never lands on an earlier partition.
	prev := 0
	for k := 0; k < 100; k++ {
		i := p.Partition(k)
		if i < prev {
			t.Fatalf("key %d on partition %d after partition %d", k, i, prev)
		}
		prev = i
	}
	if p.Describe() != "range" {
		t.Fatal("describe")
	}
}

func TestRangePartitionerBalance(t *testing.T) {
	keys := ints(1000)
	p := NewRangePartitioner(keys, 5)
	counts := make([]int, p.NumPartitions())
	for _, k := range keys {
		counts[p.Partition(k)]++
	}
	for i, c := range counts {
		if c < 100 || c > 300 {
			t.Fatalf("partition %d holds %d of 1000 keys: %v", i, c, counts)
		}
	}
}

func TestRangePartitionerDegenerate(t *testing.T) {
	p := NewRangePartitioner([]int{}, 4)
	if p.NumPartitions() != 1 {
		t.Fatalf("empty keys → %d partitions, want 1", p.NumPartitions())
	}
	same := NewRangePartitioner([]int{7, 7, 7, 7}, 3)
	for _, k := range []int{1, 7, 9} {
		i := same.Partition(k)
		if i < 0 || i >= same.NumPartitions() {
			t.Fatalf("partition %d out of range", i)
		}
	}
	if NewRangePartitioner([]int{1, 2}, 0).NumPartitions() != 1 {
		t.Fatal("n=0 should clamp to 1")
	}
}

func TestPartitionByRangeKeepsOrderContiguous(t *testing.T) {
	ctx := testCtx()
	data := make([]Pair[int, string], 50)
	for i := range data {
		data[i] = Pair[int, string]{i, "v"}
	}
	p := NewRangePartitioner([]int{0, 10, 20, 30, 40, 49}, 4)
	r := PartitionBy(Parallelize(ctx, data), p)
	// Every partition's keys must be an interval below the next's.
	prevMax := -1
	for i := 0; i < r.NumPartitions(); i++ {
		for _, rec := range r.Partition(i) {
			if rec.Key <= prevMax {
				t.Fatalf("range partitioning not contiguous at partition %d", i)
			}
		}
		for _, rec := range r.Partition(i) {
			if rec.Key > prevMax {
				prevMax = rec.Key
			}
		}
	}
}

func TestCoPartitionedCoGroupSkipsShuffle(t *testing.T) {
	ctx := testCtx()
	mk := func(n int) []Pair[int, int] {
		out := make([]Pair[int, int], n)
		for i := range out {
			out[i] = Pair[int, int]{i % 9, i}
		}
		return out
	}
	p := NewHashPartitioner[int](4)
	a := PartitionBy(ParallelizeN(ctx, mk(100), 4), p)
	b := PartitionBy(ParallelizeN(ctx, mk(40), 4), p)
	before := ctx.Snapshot()
	grouped := CoGroup(a, b)
	d := ctx.Snapshot().Diff(before)
	if d.ShuffleRecords != 0 {
		t.Fatalf("co-partitioned cogroup shuffled %d records, want 0", d.ShuffleRecords)
	}
	// The skipped shuffle must not change the answer.
	byKey := map[int]Tuple2[[]int, []int]{}
	for _, rec := range grouped.Collect() {
		byKey[rec.Key] = rec.Value
	}
	if len(byKey) != 9 {
		t.Fatalf("cogroup keys = %d, want 9", len(byKey))
	}
	for k, v := range byKey {
		wantLeft, wantRight := 0, 0
		for i := 0; i < 100; i++ {
			if i%9 == k {
				wantLeft++
			}
		}
		for i := 0; i < 40; i++ {
			if i%9 == k {
				wantRight++
			}
		}
		if len(v.A) != wantLeft || len(v.B) != wantRight {
			t.Fatalf("key %d: got %d/%d values, want %d/%d", k, len(v.A), len(v.B), wantLeft, wantRight)
		}
	}
}

func TestSortByRangePartitioned(t *testing.T) {
	ctx := testCtx()
	data := make([]int, 500)
	for i := range data {
		data[i] = (i * 7919) % 500
	}
	before := ctx.Snapshot()
	sorted := SortBy(Parallelize(ctx, data), func(v int) int { return v })
	d := ctx.Snapshot().Diff(before)
	if got := sorted.Collect(); !sort.IntsAreSorted(got) {
		t.Fatalf("SortBy result not globally sorted")
	}
	// One shuffle, every record crossing it once — the same cost model
	// as the old single-range sort, now with a range-partitioned merge.
	if d.ShuffleRecords != 500 {
		t.Fatalf("shuffle records = %d, want 500", d.ShuffleRecords)
	}
	if d.Stages != 1 {
		t.Fatalf("stages = %d, want 1", d.Stages)
	}
	if sorted.PartitionDesc() != "range" {
		t.Fatalf("partition desc = %q, want range", sorted.PartitionDesc())
	}
	// Partitions are contiguous ranges: concatenation order is sorted.
	prevMax := -1
	for i := 0; i < sorted.NumPartitions(); i++ {
		for _, v := range sorted.Partition(i) {
			if v < prevMax {
				t.Fatalf("partition %d breaks range contiguity", i)
			}
			if v > prevMax {
				prevMax = v
			}
		}
	}
}

func TestPartitionByNoDriverMaterialization(t *testing.T) {
	// PartitionBy must not re-read the dataset: RecordsRead stays flat
	// across the shuffle (the old implementation collected the whole
	// RDD to the driver to size-sample it).
	ctx := testCtx()
	r := Parallelize(ctx, benchPairs(1000))
	before := ctx.Snapshot()
	_ = PartitionBy(r, NewHashPartitioner[string](4))
	d := ctx.Snapshot().Diff(before)
	if d.RecordsRead != 0 {
		t.Fatalf("PartitionBy read %d records from source", d.RecordsRead)
	}
	if d.ShuffleRecords != 1000 || d.ShuffleBytes <= 0 {
		t.Fatalf("shuffle metering = %d records / %d bytes", d.ShuffleRecords, d.ShuffleBytes)
	}
}

func TestCoGroupMixedPartitionersStillCorrect(t *testing.T) {
	// A range-partitioned side co-locates keys within itself but at
	// different indexes than a hash-partitioned peer; the shuffle-skip
	// must not fire, or keys split across output partitions.
	ctx := testCtx()
	mk := func(n int) []Pair[int, int] {
		out := make([]Pair[int, int], n)
		for i := range out {
			out[i] = Pair[int, int]{i % 8, i}
		}
		return out
	}
	a := PartitionBy(ParallelizeN(ctx, mk(64), 4),
		NewRangePartitioner([]int{1, 3, 5}, 4))
	b := PartitionBy(ParallelizeN(ctx, mk(32), 4), NewHashPartitioner[int](4))
	grouped := CoGroup(a, b).Collect()
	seen := map[int]bool{}
	for _, rec := range grouped {
		if seen[rec.Key] {
			t.Fatalf("key %d emitted more than once (sides not co-aligned)", rec.Key)
		}
		seen[rec.Key] = true
		if len(rec.Value.A) != 8 || len(rec.Value.B) != 4 {
			t.Fatalf("key %d grouped %d/%d values, want 8/4", rec.Key, len(rec.Value.A), len(rec.Value.B))
		}
	}
	if len(seen) != 8 {
		t.Fatalf("cogroup keys = %d, want 8", len(seen))
	}
}
