package spark

import "reflect"

// estimateShuffleBytes approximates the serialized size of a shuffle
// of total records laid out in parts. Spark meters shuffle bytes and
// the engines compare on that, so a stable estimate is enough: a few
// records are sampled from the first and last non-empty partitions and
// sized structurally — the dataset is never materialized and no
// records are formatted.
func estimateShuffleBytes[T any](parts [][]T, total int) int64 {
	if total == 0 {
		return 0
	}
	var samples []T
	sample := func(part []T, fromEnd bool) {
		k := len(part)
		if k > 3 {
			k = 3
		}
		for i := 0; i < k; i++ {
			j := i
			if fromEnd {
				j = len(part) - 1 - i
			}
			samples = append(samples, part[j])
		}
	}
	for _, part := range parts {
		if len(part) > 0 {
			sample(part, false)
			break
		}
	}
	for i := len(parts) - 1; i >= 0; i-- {
		if len(parts[i]) > 0 {
			sample(parts[i], true)
			break
		}
	}
	return estimateBytesFromSamples(samples, total)
}

// estimateBytesFromSamples sizes a shuffle of total records from a
// handful of representative records. CombineByKey uses it directly:
// its combined records live in per-destination combiner maps during the
// scatter, never in boundary partitions estimateShuffleBytes could
// walk, so the combiner scatter hands over samples it drew itself.
func estimateBytesFromSamples[T any](samples []T, total int) int64 {
	if total == 0 {
		return 0
	}
	var sum int64
	for _, s := range samples {
		sum += approxSize(reflect.ValueOf(s), 0)
	}
	per := int64(1)
	if n := int64(len(samples)); n > 0 {
		per = sum / n
	}
	if per < 1 {
		per = 1
	}
	return per * int64(total)
}

// approxSize estimates the wire size of one value: fixed-width kinds
// by their memory size, strings and containers by header plus
// contents. It is deterministic and cheap — it runs on a handful of
// sampled records per shuffle, never per record. The depth bound
// terminates cyclic records (e.g. nodes with parent back-pointers),
// which a structural walk would otherwise chase forever.
func approxSize(v reflect.Value, depth int) int64 {
	if depth > 8 {
		return 8
	}
	switch v.Kind() {
	case reflect.String:
		return 16 + int64(v.Len())
	case reflect.Slice, reflect.Array:
		size := int64(24)
		for i := 0; i < v.Len(); i++ {
			size += approxSize(v.Index(i), depth+1)
		}
		return size
	case reflect.Map:
		size := int64(48)
		iter := v.MapRange()
		for iter.Next() {
			size += approxSize(iter.Key(), depth+1) + approxSize(iter.Value(), depth+1)
		}
		return size
	case reflect.Struct:
		var size int64
		for i := 0; i < v.NumField(); i++ {
			size += approxSize(v.Field(i), depth+1)
		}
		return size
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return 8
		}
		return 8 + approxSize(v.Elem(), depth+1)
	case reflect.Invalid:
		return 8
	default:
		return int64(v.Type().Size())
	}
}
