package graphframes

import (
	"testing"

	"repro/internal/spark"
	"repro/internal/spark/sql"
)

func testGraph(t *testing.T) *GraphFrame {
	t.Helper()
	ctx := spark.NewContext(spark.Config{Parallelism: 2, Executors: 2, BroadcastThreshold: 100, MaxConcurrency: 2})
	v, err := sql.NewDataFrame(ctx, sql.Schema{"id", "name"}, []sql.Row{
		{"a", "alice"}, {"b", "bob"}, {"c", "carol"}, {"d", "dave"},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := sql.NewDataFrame(ctx, sql.Schema{"src", "dst", "rel"}, []sql.Row{
		{"a", "b", "knows"},
		{"b", "c", "knows"},
		{"c", "a", "knows"},
		{"a", "d", "likes"},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(v, e)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidatesSchemas(t *testing.T) {
	ctx := spark.NewContext(spark.DefaultConfig())
	bad, _ := sql.NewDataFrame(ctx, sql.Schema{"x"}, nil)
	good, _ := sql.NewDataFrame(ctx, sql.Schema{"src", "dst"}, nil)
	if _, err := New(bad, good); err == nil {
		t.Fatal("expected vertex schema error")
	}
	goodV, _ := sql.NewDataFrame(ctx, sql.Schema{"id"}, nil)
	if _, err := New(goodV, bad); err == nil {
		t.Fatal("expected edge schema error")
	}
}

func TestParseMotif(t *testing.T) {
	pats, err := ParseMotif("(a)-[e]->(b); (b)-[]->(c)")
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 2 {
		t.Fatalf("patterns = %d", len(pats))
	}
	if pats[0].src != "a" || pats[0].edge != "e" || pats[0].dst != "b" {
		t.Fatalf("pattern 0 = %+v", pats[0])
	}
	if pats[1].edge != "" {
		t.Fatalf("pattern 1 edge = %q", pats[1].edge)
	}
	for _, bad := range []string{"", "(a)-[e]-(b)", "a-[e]->(b)", "(a)-[e->(b)", "(a)-[e]->(b"} {
		if _, err := ParseMotif(bad); err == nil {
			t.Errorf("ParseMotif(%q) succeeded", bad)
		}
	}
}

func TestFindSingleEdge(t *testing.T) {
	g := testGraph(t)
	df, err := g.Find("(x)-[e]->(y)")
	if err != nil {
		t.Fatal(err)
	}
	if df.Count() != 4 {
		t.Fatalf("matches = %d", df.Count())
	}
	if !df.Schema().Has("x") || !df.Schema().Has("y") || !df.Schema().Has("e.rel") {
		t.Fatalf("schema = %v", df.Schema())
	}
}

func TestFindTwoHop(t *testing.T) {
	g := testGraph(t)
	df, err := g.Find("(x)-[]->(y); (y)-[]->(z)")
	if err != nil {
		t.Fatal(err)
	}
	// Paths: a->b->c, b->c->a, c->a->b, c->a->d.
	if df.Count() != 4 {
		t.Fatalf("two-hop matches = %d: %v", df.Count(), df.Collect())
	}
}

func TestFindTriangle(t *testing.T) {
	g := testGraph(t)
	df, err := g.Find("(x)-[]->(y); (y)-[]->(z); (z)-[]->(x)")
	if err != nil {
		t.Fatal(err)
	}
	// The directed triangle a->b->c->a appears once per rotation.
	if df.Count() != 3 {
		t.Fatalf("triangles = %d", df.Count())
	}
}

func TestFindWithEdgeFilter(t *testing.T) {
	g := testGraph(t)
	filtered, err := g.FilterEdges(sql.Eq("rel", "likes"))
	if err != nil {
		t.Fatal(err)
	}
	df, err := filtered.Find("(x)-[e]->(y)")
	if err != nil {
		t.Fatal(err)
	}
	rows := df.Collect()
	if len(rows) != 1 {
		t.Fatalf("filtered matches = %v", rows)
	}
	xi := df.Schema().Index("x")
	yi := df.Schema().Index("y")
	if rows[0][xi] != "a" || rows[0][yi] != "d" {
		t.Fatalf("match = %v", rows[0])
	}
}

func TestDegrees(t *testing.T) {
	g := testGraph(t)
	df, err := g.Degrees()
	if err != nil {
		t.Fatal(err)
	}
	deg := map[string]int64{}
	for _, r := range df.Collect() {
		deg[r[0].(string)] = r[1].(int64)
	}
	if deg["a"] != 3 || deg["d"] != 1 {
		t.Fatalf("degrees = %v", deg)
	}
}

func TestFindDisconnectedPatternsCross(t *testing.T) {
	g := testGraph(t)
	df, err := g.Find("(x)-[]->(y); (p)-[]->(q)")
	if err != nil {
		t.Fatal(err)
	}
	if df.Count() != 16 { // 4 edges x 4 edges
		t.Fatalf("cross matches = %d", df.Count())
	}
}

func TestFindAnonymousEverything(t *testing.T) {
	g := testGraph(t)
	df, err := g.Find("()-[]->()")
	if err != nil {
		t.Fatal(err)
	}
	// All columns anonymous: result keeps the rows but hides helpers.
	if df.Count() != 4 {
		t.Fatalf("matches = %d", df.Count())
	}
}

func TestFindRepeatedEdgeVariableColumns(t *testing.T) {
	g := testGraph(t)
	df, err := g.Find("(x)-[e1]->(y); (y)-[e2]->(z)")
	if err != nil {
		t.Fatal(err)
	}
	if !df.Schema().Has("e1.rel") || !df.Schema().Has("e2.rel") {
		t.Fatalf("edge columns missing: %v", df.Schema())
	}
}

func TestParseMotifWhitespaceTolerance(t *testing.T) {
	pats, err := ParseMotif("  ( a )-[ e ]->( b ) ;  ( b )-[]->( c )  ")
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 2 || pats[0].src != "a" || pats[0].edge != "e" {
		t.Fatalf("patterns = %+v", pats)
	}
}
