// Package graphframes simulates the GraphFrames API: a graph whose
// vertices and edges are DataFrames, with motif (edge-pattern) finding
// compiled into DataFrame joins. The survey (Sec. III) notes that
// GraphFrames, unlike GraphX, "supports also queries over graphs" and
// inherits the scalability of DataFrames; Bahrami et al. [4] build
// their RDF engine on exactly this motif-matching capability.
package graphframes

import (
	"fmt"
	"strings"

	"repro/internal/spark"
	"repro/internal/spark/sql"
)

// Required column names, matching the GraphFrames convention.
const (
	ColID  = "id"
	ColSrc = "src"
	ColDst = "dst"
)

// GraphFrame is a property graph stored as two DataFrames.
type GraphFrame struct {
	vertices *sql.DataFrame
	edges    *sql.DataFrame
}

// New validates the schemas (vertices need "id"; edges need "src" and
// "dst") and builds the GraphFrame.
func New(vertices, edges *sql.DataFrame) (*GraphFrame, error) {
	if !vertices.Schema().Has(ColID) {
		return nil, fmt.Errorf("graphframes: vertices need an %q column (have %s)", ColID, vertices.Schema())
	}
	if !edges.Schema().Has(ColSrc) || !edges.Schema().Has(ColDst) {
		return nil, fmt.Errorf("graphframes: edges need %q and %q columns (have %s)", ColSrc, ColDst, edges.Schema())
	}
	return &GraphFrame{vertices: vertices, edges: edges}, nil
}

// Vertices returns the vertex DataFrame.
func (g *GraphFrame) Vertices() *sql.DataFrame { return g.vertices }

// Edges returns the edge DataFrame.
func (g *GraphFrame) Edges() *sql.DataFrame { return g.edges }

// Context returns the owning spark context.
func (g *GraphFrame) Context() *spark.Context { return g.vertices.Context() }

// Degrees returns a DataFrame (id, degree) of total degrees.
func (g *GraphFrame) Degrees() (*sql.DataFrame, error) {
	srcs, err := g.edges.Select(ColSrc + " AS id")
	if err != nil {
		return nil, err
	}
	dsts, err := g.edges.Select(ColDst + " AS id")
	if err != nil {
		return nil, err
	}
	all, err := srcs.Union(dsts)
	if err != nil {
		return nil, err
	}
	agg, err := all.Aggregate([]string{"id"}, sql.AggCount, "*")
	if err != nil {
		return nil, err
	}
	df, err := agg.Select("id", "COUNT(*) AS degree")
	if err != nil {
		return nil, err
	}
	return df, nil
}

// edgePattern is one "(a)-[e]->(b)" term of a motif.
type edgePattern struct {
	src, edge, dst string // empty for anonymous
}

// ParseMotif parses a GraphFrames motif string: semicolon-separated
// edge patterns "(a)-[e]->(b)" where any of a, e, b may be empty
// (anonymous). Example: "(x)-[]->(y); (y)-[e]->(z)".
func ParseMotif(motif string) ([]edgePattern, error) {
	var pats []edgePattern
	for _, termRaw := range strings.Split(motif, ";") {
		term := strings.TrimSpace(termRaw)
		if term == "" {
			continue
		}
		var p edgePattern
		rest := term
		var ok bool
		p.src, rest, ok = parseDelim(rest, "(", ")")
		if !ok {
			return nil, fmt.Errorf("graphframes: bad motif term %q: want (src)", term)
		}
		rest = strings.TrimPrefix(strings.TrimSpace(rest), "-")
		p.edge, rest, ok = parseDelim(rest, "[", "]")
		if !ok {
			return nil, fmt.Errorf("graphframes: bad motif term %q: want [edge]", term)
		}
		rest = strings.TrimSpace(rest)
		if !strings.HasPrefix(rest, "->") {
			return nil, fmt.Errorf("graphframes: bad motif term %q: want ->", term)
		}
		rest = rest[2:]
		p.dst, rest, ok = parseDelim(rest, "(", ")")
		if !ok || strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("graphframes: bad motif term %q: want (dst)", term)
		}
		pats = append(pats, p)
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("graphframes: empty motif")
	}
	return pats, nil
}

func parseDelim(s, open, close string) (name, rest string, ok bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, open) {
		return "", "", false
	}
	end := strings.Index(s, close)
	if end < 0 {
		return "", "", false
	}
	return strings.TrimSpace(s[len(open):end]), s[end+len(close):], true
}

// Find evaluates a motif and returns one row per binding. Named vertex
// variables become columns holding vertex ids; a named edge variable e
// becomes one column per non-src/dst edge attribute, named "e.attr".
// Repeated vertex variables join naturally (same column name), which is
// what makes motifs express SPARQL basic graph patterns.
func (g *GraphFrame) Find(motif string) (*sql.DataFrame, error) {
	pats, err := ParseMotif(motif)
	if err != nil {
		return nil, err
	}
	extraCols := extraEdgeCols(g.edges.Schema())

	var result *sql.DataFrame
	hidden := map[string]bool{}
	for i, p := range pats {
		cols := make([]string, 0, 2+len(extraCols))
		srcName := p.src
		if srcName == "" {
			srcName = fmt.Sprintf("_anon_src_%d", i)
			hidden[srcName] = true
		}
		dstName := p.dst
		if dstName == "" {
			dstName = fmt.Sprintf("_anon_dst_%d", i)
			hidden[dstName] = true
		}
		cols = append(cols, ColSrc+" AS "+srcName, ColDst+" AS "+dstName)
		if p.edge != "" {
			for _, c := range extraCols {
				cols = append(cols, c+" AS "+p.edge+"."+c)
			}
		}
		step, err := g.edges.Select(cols...)
		if err != nil {
			return nil, err
		}
		if result == nil {
			result = step
			continue
		}
		shared := result.Schema().Shared(step.Schema())
		if len(shared) == 0 {
			result = result.CrossJoin(step)
			continue
		}
		result, err = result.Join(step, shared, sql.JoinAuto)
		if err != nil {
			return nil, err
		}
	}

	// Drop the anonymous helper columns.
	var keep []string
	for _, c := range result.Schema() {
		if !hidden[c] {
			keep = append(keep, c)
		}
	}
	if len(keep) == 0 {
		return result, nil
	}
	return result.Select(keep...)
}

// extraEdgeCols lists edge attribute columns other than src/dst.
func extraEdgeCols(s sql.Schema) []string {
	var out []string
	for _, c := range s {
		if c != ColSrc && c != ColDst {
			out = append(out, c)
		}
	}
	return out
}

// FilterEdges returns a GraphFrame whose edges satisfy pred; vertices
// are kept as-is (motif results only ever reference edge endpoints).
func (g *GraphFrame) FilterEdges(pred sql.Expr) (*GraphFrame, error) {
	fe, err := g.edges.Filter(pred)
	if err != nil {
		return nil, err
	}
	return &GraphFrame{vertices: g.vertices, edges: fe}, nil
}
