package spark

// Pair is a key/value record, the element type of Spark's pair RDDs.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// KeyBy turns each record into a (key(v), v) pair, like RDD.keyBy. The
// SPARQLGX engine uses this to join triple-pattern results on their
// shared variable.
func KeyBy[T any, K comparable](r *RDD[T], key func(T) K) *RDD[Pair[K, T]] {
	return Map(r, func(v T) Pair[K, T] { return Pair[K, T]{key(v), v} })
}

// Keys projects the keys of a pair RDD.
func Keys[K comparable, V any](r *RDD[Pair[K, V]]) *RDD[K] {
	return Map(r, func(p Pair[K, V]) K { return p.Key })
}

// Values projects the values of a pair RDD.
func Values[K comparable, V any](r *RDD[Pair[K, V]]) *RDD[V] {
	return Map(r, func(p Pair[K, V]) V { return p.Value })
}

// MapValues transforms values while keeping keys (and any existing key
// partitioning) intact.
func MapValues[K comparable, V, W any](r *RDD[Pair[K, V]], f func(V) W) *RDD[Pair[K, W]] {
	out := Map(r, func(p Pair[K, V]) Pair[K, W] { return Pair[K, W]{p.Key, f(p.Value)} })
	out.keyedHint = r.keyedHint
	out.partDesc = r.partDesc
	out.placedBy = r.placedBy
	return out
}

// PartitionBy redistributes a pair RDD so every record lands on the
// partition chosen by p. This is the fundamental wide transformation:
// the whole dataset crosses a shuffle boundary and is metered as such.
// The scatter runs one map-side task per source partition in parallel,
// each writing per-destination buckets that are merged (in source
// order, so the placement is deterministic) at the end; the byte
// estimate samples boundary partitions instead of collecting the
// dataset to the driver.
func PartitionBy[K comparable, V any](r *RDD[Pair[K, V]], p Partitioner[K]) *RDD[Pair[K, V]] {
	n := p.NumPartitions()
	if n < 1 {
		n = 1
	}
	out, total := scatterMerge(r.ctx, r.parts, n, func(rec Pair[K, V]) int { return p.Partition(rec.Key) })
	r.ctx.addShuffle(int64(total), estimateShuffleBytes(r.parts, total))
	res := fromParts(r.ctx, out, p.Describe())
	res.keyedHint = true
	res.placedBy = p
	return res
}

// coPartitionedWith reports whether r is already laid out exactly as
// hash partitioner p would place it, so a join-like operation can
// skip r's shuffle. The keyed hint alone is not enough: a
// range-partitioned side co-locates each key within itself but at
// different indexes than a hash-partitioned peer. Hash placement is a
// pure function of key and partition count, so r qualifies exactly
// when the partitioner that placed it was a HashPartitioner with the
// same count — checked against the recorded placer, not its Describe
// string, which a custom partitioner could spoof.
func coPartitionedWith[K comparable, V any](r *RDD[Pair[K, V]], p HashPartitioner[K]) bool {
	placed, ok := r.placedBy.(HashPartitioner[K])
	return ok && r.keyedHint && placed.N == p.N && len(r.parts) == p.N
}

// IsKeyPartitioned reports whether the pair RDD has already been placed
// by a key partitioner, in which case co-partitioned joins skip the
// shuffle for that side (Spark's "known partitioner" optimization).
func IsKeyPartitioned[K comparable, V any](r *RDD[Pair[K, V]]) bool { return r.keyedHint }

// combineBucket is one per-destination combiner map built during the
// scatter of CombineByKey: the fold happens while records are being
// placed, so only combined records ever exist on the reduce side. The
// insertion order is kept so output ordering stays deterministic.
type combineBucket[K comparable, C any] struct {
	m     map[K]C
	order []K
}

// CombineByKey is the general aggregate-by-key operator, like
// PairRDDFunctions.combineByKey: createCombiner seeds a combiner from a
// key's first value, mergeValue folds further values into it map-side,
// and mergeCombiners merges the per-source combiners reduce-side. The
// scatter step is combiner-aware — each source task folds its records
// straight into per-destination combiner maps while placing them, so
// exactly one combined record per (source partition, key) crosses the
// shuffle and combined records are materialized once, at their
// destination. There is no intermediate pre-combined RDD and no second
// full reduce pass, and a side already hash-partitioned with the
// matching partition count folds in place with no shuffle at all.
// Output ordering is deterministic: destinations merge source buckets
// in source order, keys appear in first-seen order.
func CombineByKey[K comparable, V, C any](r *RDD[Pair[K, V]], createCombiner func(V) C, mergeValue func(C, V) C, mergeCombiners func(C, C) C) *RDD[Pair[K, C]] {
	n := len(r.parts)
	if n < 1 {
		n = 1
	}
	p := NewHashPartitioner[K](n)
	// A side already hash-placed like p has every key on its final
	// partition: fold in place, no shuffle — Spark's "known partitioner"
	// optimization, same as Join/CoGroup.
	if coPartitionedWith(r, p) {
		out := make([][]Pair[K, C], len(r.parts))
		r.ctx.runTasks(len(r.parts), func(i int) {
			if len(r.parts[i]) == 0 {
				return
			}
			m := make(map[K]C, len(r.parts[i]))
			order := make([]K, 0, len(r.parts[i]))
			for _, rec := range r.parts[i] {
				if c, ok := m[rec.Key]; ok {
					m[rec.Key] = mergeValue(c, rec.Value)
				} else {
					m[rec.Key] = createCombiner(rec.Value)
					order = append(order, rec.Key)
				}
			}
			part := make([]Pair[K, C], 0, len(order))
			for _, k := range order {
				part = append(part, Pair[K, C]{k, m[k]})
			}
			out[i] = part
		})
		res := fromParts(r.ctx, out, "hash")
		res.keyedHint = true
		res.placedBy = r.placedBy
		return res
	}
	buckets := make([][]combineBucket[K, C], len(r.parts))
	r.ctx.runTasks(len(r.parts), func(i int) {
		local := make([]combineBucket[K, C], n)
		for _, rec := range r.parts[i] {
			b := &local[p.Partition(rec.Key)]
			if b.m == nil {
				b.m = make(map[K]C)
			}
			if c, ok := b.m[rec.Key]; ok {
				b.m[rec.Key] = mergeValue(c, rec.Value)
			} else {
				b.m[rec.Key] = createCombiner(rec.Value)
				b.order = append(b.order, rec.Key)
			}
		}
		buckets[i] = local
	})

	// Meter the shuffle: the records crossing it are the combined ones.
	// Sample a few from the first and last non-empty buckets for the
	// byte estimate (the combined records live only in the combiner
	// maps, so the sampling walks those instead of partitions).
	total := 0
	for _, local := range buckets {
		for _, b := range local {
			total += len(b.order)
		}
	}
	var samples []Pair[K, C]
	sampleFrom := func(b combineBucket[K, C], fromEnd bool) {
		k := len(b.order)
		if k > 3 {
			k = 3
		}
		keys := b.order[:k]
		if fromEnd {
			keys = b.order[len(b.order)-k:]
		}
		for _, key := range keys {
			samples = append(samples, Pair[K, C]{key, b.m[key]})
		}
	}
sampleFirst:
	for _, local := range buckets {
		for _, b := range local {
			if len(b.order) > 0 {
				sampleFrom(b, false)
				break sampleFirst
			}
		}
	}
sampleLast:
	for i := len(buckets) - 1; i >= 0; i-- {
		for j := len(buckets[i]) - 1; j >= 0; j-- {
			if b := buckets[i][j]; len(b.order) > 0 {
				sampleFrom(b, true)
				break sampleLast
			}
		}
	}
	r.ctx.addShuffle(int64(total), estimateBytesFromSamples(samples, total))

	// Reduce side: merge the per-source combiners in source order.
	out := make([][]Pair[K, C], n)
	r.ctx.runTasks(n, func(dst int) {
		size := 0
		for src := range buckets {
			size += len(buckets[src][dst].order)
		}
		if size == 0 {
			return
		}
		part := make([]Pair[K, C], 0, size)
		idx := make(map[K]int32, size)
		for src := range buckets {
			b := buckets[src][dst]
			for _, k := range b.order {
				if j, ok := idx[k]; ok {
					part[j].Value = mergeCombiners(part[j].Value, b.m[k])
				} else {
					idx[k] = int32(len(part))
					part = append(part, Pair[K, C]{k, b.m[k]})
				}
			}
		}
		out[dst] = part
	})
	res := fromParts(r.ctx, out, "hash")
	res.keyedHint = true
	res.placedBy = p
	return res
}

// ReduceByKey merges values per key with the associative function f,
// like PairRDDFunctions.reduceByKey. It is CombineByKey with the value
// type as its own combiner: map-side combining happens inside the
// scatter, so only one record per (partition, key) crosses the shuffle
// — the accounting reflects that.
func ReduceByKey[K comparable, V any](r *RDD[Pair[K, V]], f func(V, V) V) *RDD[Pair[K, V]] {
	return CombineByKey(r, func(v V) V { return v }, f, f)
}

// GroupByKey collects all values per key, like
// PairRDDFunctions.groupByKey. No map-side combine: the full dataset
// crosses the shuffle, which is exactly why the hybrid study prefers
// reduceByKey. The reduce side folds the scattered buckets straight
// into the grouped output, never materializing merged intermediate
// partitions; a side that is already key-partitioned skips the shuffle
// entirely and groups in place.
func GroupByKey[K comparable, V any](r *RDD[Pair[K, V]]) *RDD[Pair[K, []V]] {
	if r.keyedHint {
		out := make([][]Pair[K, []V], len(r.parts))
		r.ctx.runTasks(len(r.parts), func(i int) {
			if len(r.parts[i]) == 0 {
				return
			}
			idx := make(map[K]int32, len(r.parts[i]))
			out[i] = groupRecords(nil, idx, r.parts[i])
		})
		res := fromParts(r.ctx, out, "hash")
		res.keyedHint = true
		res.placedBy = r.placedBy
		return res
	}
	n := len(r.parts)
	if n < 1 {
		n = 1
	}
	p := NewHashPartitioner[K](n)
	buckets, total := scatterBuckets(r.ctx, r.parts, n, func(rec Pair[K, V]) int { return p.Partition(rec.Key) })
	r.ctx.addShuffle(int64(total), estimateShuffleBytes(r.parts, total))
	out := make([][]Pair[K, []V], n)
	r.ctx.runTasks(n, func(dst int) {
		size := 0
		for src := range buckets {
			size += len(buckets[src][dst])
		}
		if size == 0 {
			return
		}
		var part []Pair[K, []V]
		idx := make(map[K]int32, size)
		for src := range buckets {
			part = groupRecords(part, idx, buckets[src][dst])
		}
		out[dst] = part
	})
	res := fromParts(r.ctx, out, "hash")
	res.keyedHint = true
	res.placedBy = p
	return res
}

// groupRecords folds records into the grouped accumulator, keeping keys
// in first-seen order; idx maps each accumulated key to its position
// and is maintained across calls.
func groupRecords[K comparable, V any](part []Pair[K, []V], idx map[K]int32, recs []Pair[K, V]) []Pair[K, []V] {
	for _, rec := range recs {
		if j, ok := idx[rec.Key]; ok {
			part[j].Value = append(part[j].Value, rec.Value)
		} else {
			idx[rec.Key] = int32(len(part))
			part = append(part, Pair[K, []V]{rec.Key, []V{rec.Value}})
		}
	}
	return part
}

// Join computes the inner equi-join of two pair RDDs with a partitioned
// (shuffle hash) join: both sides are co-partitioned by key, then each
// partition is joined locally. Sides already hash-partitioned with the
// matching partition count skip their shuffle (Spark's "known
// partitioner" optimization).
func Join[K comparable, V, W any](a *RDD[Pair[K, V]], b *RDD[Pair[K, W]]) *RDD[Pair[K, Tuple2[V, W]]] {
	n := len(a.parts)
	if len(b.parts) > n {
		n = len(b.parts)
	}
	p := NewHashPartitioner[K](n)
	left := a
	if !coPartitionedWith(a, p) {
		left = PartitionBy(a, p)
	}
	right := b
	if !coPartitionedWith(b, p) {
		right = PartitionBy(b, p)
	}
	out := make([][]Pair[K, Tuple2[V, W]], n)
	a.ctx.runTasks(n, func(i int) {
		build := make(map[K][]V)
		for _, rec := range left.parts[i] {
			build[rec.Key] = append(build[rec.Key], rec.Value)
		}
		var joined []Pair[K, Tuple2[V, W]]
		for _, rec := range right.parts[i] {
			for _, v := range build[rec.Key] {
				joined = append(joined, Pair[K, Tuple2[V, W]]{rec.Key, Tuple2[V, W]{v, rec.Value}})
			}
		}
		out[i] = joined
	})
	res := fromParts(a.ctx, out, "hash")
	res.keyedHint = true
	res.placedBy = p
	return res
}

// LeftOuterJoin joins keeping every left record; unmatched rows carry
// ok=false on the right value, like PairRDDFunctions.leftOuterJoin.
func LeftOuterJoin[K comparable, V, W any](a *RDD[Pair[K, V]], b *RDD[Pair[K, W]]) *RDD[Pair[K, Tuple2[V, Opt[W]]]] {
	n := len(a.parts)
	if len(b.parts) > n {
		n = len(b.parts)
	}
	p := NewHashPartitioner[K](n)
	left := a
	if !coPartitionedWith(a, p) {
		left = PartitionBy(a, p)
	}
	right := b
	if !coPartitionedWith(b, p) {
		right = PartitionBy(b, p)
	}
	out := make([][]Pair[K, Tuple2[V, Opt[W]]], n)
	a.ctx.runTasks(n, func(i int) {
		probe := make(map[K][]W)
		for _, rec := range right.parts[i] {
			probe[rec.Key] = append(probe[rec.Key], rec.Value)
		}
		var joined []Pair[K, Tuple2[V, Opt[W]]]
		for _, rec := range left.parts[i] {
			matches := probe[rec.Key]
			if len(matches) == 0 {
				joined = append(joined, Pair[K, Tuple2[V, Opt[W]]]{rec.Key, Tuple2[V, Opt[W]]{rec.Value, Opt[W]{}}})
				continue
			}
			for _, w := range matches {
				joined = append(joined, Pair[K, Tuple2[V, Opt[W]]]{rec.Key, Tuple2[V, Opt[W]]{rec.Value, Opt[W]{Val: w, OK: true}}})
			}
		}
		out[i] = joined
	})
	res := fromParts(a.ctx, out, "hash")
	res.keyedHint = true
	res.placedBy = p
	return res
}

// Opt is an optional value, used by outer joins.
type Opt[T any] struct {
	Val T
	OK  bool
}

// BroadcastJoin joins a large pair RDD against a small one by shipping
// the small side to every executor and probing it locally — no shuffle
// of the large side. This is the broadcast-hash-join strategy the hybrid
// study [21] contrasts with the partitioned join.
func BroadcastJoin[K comparable, V, W any](large *RDD[Pair[K, V]], small *RDD[Pair[K, W]]) *RDD[Pair[K, Tuple2[V, W]]] {
	table := make(map[K][]W)
	rows := small.Collect()
	for _, rec := range rows {
		table[rec.Key] = append(table[rec.Key], rec.Value)
	}
	large.ctx.addBroadcast(len(rows))
	out := make([][]Pair[K, Tuple2[V, W]], len(large.parts))
	large.ctx.runTasks(len(large.parts), func(i int) {
		var joined []Pair[K, Tuple2[V, W]]
		for _, rec := range large.parts[i] {
			for _, w := range table[rec.Key] {
				joined = append(joined, Pair[K, Tuple2[V, W]]{rec.Key, Tuple2[V, W]{rec.Value, w}})
			}
		}
		out[i] = joined
	})
	res := fromParts(large.ctx, out, large.partDesc)
	res.keyedHint = large.keyedHint
	res.placedBy = large.placedBy
	return res
}

// CoGroup groups both RDDs by key in one shuffle, like
// PairRDDFunctions.cogroup: the result holds, per key, all left values
// and all right values. Sides already hash-partitioned with the
// matching partition count skip their shuffle, exactly as Join does.
func CoGroup[K comparable, V, W any](a *RDD[Pair[K, V]], b *RDD[Pair[K, W]]) *RDD[Pair[K, Tuple2[[]V, []W]]] {
	n := len(a.parts)
	if len(b.parts) > n {
		n = len(b.parts)
	}
	p := NewHashPartitioner[K](n)
	left := a
	if !coPartitionedWith(a, p) {
		left = PartitionBy(a, p)
	}
	right := b
	if !coPartitionedWith(b, p) {
		right = PartitionBy(b, p)
	}
	out := make([][]Pair[K, Tuple2[[]V, []W]], n)
	a.ctx.runTasks(n, func(i int) {
		lm := make(map[K][]V)
		rm := make(map[K][]W)
		order := make([]K, 0)
		seen := make(map[K]bool)
		for _, rec := range left.parts[i] {
			if !seen[rec.Key] {
				seen[rec.Key] = true
				order = append(order, rec.Key)
			}
			lm[rec.Key] = append(lm[rec.Key], rec.Value)
		}
		for _, rec := range right.parts[i] {
			if !seen[rec.Key] {
				seen[rec.Key] = true
				order = append(order, rec.Key)
			}
			rm[rec.Key] = append(rm[rec.Key], rec.Value)
		}
		part := make([]Pair[K, Tuple2[[]V, []W]], 0, len(order))
		for _, k := range order {
			part = append(part, Pair[K, Tuple2[[]V, []W]]{k, Tuple2[[]V, []W]{lm[k], rm[k]}})
		}
		out[i] = part
	})
	res := fromParts(a.ctx, out, "hash")
	res.keyedHint = true
	res.placedBy = p
	return res
}

// CountByKey returns a map from key to occurrence count, computed with
// a combineByKey whose combiner is the running count (so it is metered
// like a reduceByKey: one combined record per partition and key crosses
// the shuffle, without the intermediate ones-RDD of the old
// MapValues+ReduceByKey pipeline).
func CountByKey[K comparable, V any](r *RDD[Pair[K, V]]) map[K]int {
	counts := CombineByKey(r,
		func(V) int { return 1 },
		func(c int, _ V) int { return c + 1 },
		func(a, b int) int { return a + b })
	out := make(map[K]int)
	for _, p := range counts.Collect() {
		out[p.Key] = p.Value
	}
	return out
}

// Tuple2 is a plain value pair with no comparability requirement; join
// results carry their two sides in one.
type Tuple2[A, B any] struct {
	A A
	B B
}
