package spark

// Micro-benchmarks for the shuffle hot path. The survey compares
// engines by the shuffle work their plans generate, so PartitionBy /
// Join / SortBy sit under every macro-benchmark in the repo root;
// these track their cost (and allocation behavior) in isolation,
// PR-over-PR. Run with
//
//	go test ./internal/spark -bench=. -benchmem

import (
	"fmt"
	"testing"
)

func benchPairs(n int) []Pair[string, int] {
	out := make([]Pair[string, int], n)
	for i := range out {
		out[i] = Pair[string, int]{Key: fmt.Sprintf("key-%d", i%257), Value: i}
	}
	return out
}

func BenchmarkPartitionBy(b *testing.B) {
	ctx := NewContext(Config{Parallelism: 4, Executors: 2, MaxConcurrency: 8})
	r := Parallelize(ctx, benchPairs(10000))
	p := NewHashPartitioner[string](4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PartitionBy(r, p)
	}
}

func BenchmarkJoinCoPartitioned(b *testing.B) {
	ctx := NewContext(Config{Parallelism: 4, Executors: 2, MaxConcurrency: 8})
	p := NewHashPartitioner[string](4)
	left := PartitionBy(Parallelize(ctx, benchPairs(5000)), p)
	right := PartitionBy(Parallelize(ctx, benchPairs(1000)), p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Join(left, right)
	}
}

func BenchmarkCoGroupCoPartitioned(b *testing.B) {
	ctx := NewContext(Config{Parallelism: 4, Executors: 2, MaxConcurrency: 8})
	p := NewHashPartitioner[string](4)
	left := PartitionBy(Parallelize(ctx, benchPairs(5000)), p)
	right := PartitionBy(Parallelize(ctx, benchPairs(1000)), p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CoGroup(left, right)
	}
}

func BenchmarkSortBy(b *testing.B) {
	ctx := NewContext(Config{Parallelism: 4, Executors: 2, MaxConcurrency: 8})
	data := make([]int, 10000)
	for i := range data {
		data[i] = (i * 7919) % 10000
	}
	r := Parallelize(ctx, data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SortBy(r, func(v int) int { return v })
	}
}
