package spark

// Micro-benchmarks for the shuffle hot path. The survey compares
// engines by the shuffle work their plans generate, so PartitionBy /
// Join / SortBy sit under every macro-benchmark in the repo root;
// these track their cost (and allocation behavior) in isolation,
// PR-over-PR. Run with
//
//	go test ./internal/spark -bench=. -benchmem

import (
	"fmt"
	"testing"
)

func benchPairs(n int) []Pair[string, int] {
	out := make([]Pair[string, int], n)
	for i := range out {
		out[i] = Pair[string, int]{Key: fmt.Sprintf("key-%d", i%257), Value: i}
	}
	return out
}

func BenchmarkPartitionBy(b *testing.B) {
	ctx := NewContext(Config{Parallelism: 4, Executors: 2, MaxConcurrency: 8})
	r := Parallelize(ctx, benchPairs(10000))
	p := NewHashPartitioner[string](4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PartitionBy(r, p)
	}
}

func BenchmarkJoinCoPartitioned(b *testing.B) {
	ctx := NewContext(Config{Parallelism: 4, Executors: 2, MaxConcurrency: 8})
	p := NewHashPartitioner[string](4)
	left := PartitionBy(Parallelize(ctx, benchPairs(5000)), p)
	right := PartitionBy(Parallelize(ctx, benchPairs(1000)), p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Join(left, right)
	}
}

func BenchmarkCoGroupCoPartitioned(b *testing.B) {
	ctx := NewContext(Config{Parallelism: 4, Executors: 2, MaxConcurrency: 8})
	p := NewHashPartitioner[string](4)
	left := PartitionBy(Parallelize(ctx, benchPairs(5000)), p)
	right := PartitionBy(Parallelize(ctx, benchPairs(1000)), p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CoGroup(left, right)
	}
}

// BenchmarkReduceByKey tracks the combiner-aware scatter: values fold
// into per-destination combiner maps while being placed, so the only
// records crossing the shuffle are the combined ones (reported as
// shuffleRec/op, bounded by distinct keys per source partition) and the
// old intermediate pre-combined RDD plus its second reduce pass are
// gone.
func BenchmarkReduceByKey(b *testing.B) {
	ctx := NewContext(Config{Parallelism: 4, Executors: 2, MaxConcurrency: 8})
	r := Parallelize(ctx, benchPairs(10000))
	b.ReportAllocs()
	before := ctx.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ReduceByKey(r, func(a, b int) int { return a + b })
	}
	d := ctx.Snapshot().Diff(before)
	b.ReportMetric(float64(d.ShuffleRecords)/float64(b.N), "shuffleRec/op")
}

func BenchmarkSortBy(b *testing.B) {
	ctx := NewContext(Config{Parallelism: 4, Executors: 2, MaxConcurrency: 8})
	data := make([]int, 10000)
	for i := range data {
		data[i] = (i * 7919) % 10000
	}
	r := Parallelize(ctx, data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SortBy(r, func(v int) int { return v })
	}
}
