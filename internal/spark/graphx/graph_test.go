package graphx

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/spark"
)

func gctx() *spark.Context {
	return spark.NewContext(spark.Config{Parallelism: 4, Executors: 2, MaxConcurrency: 4})
}

// chain builds 1 -> 2 -> ... -> n.
func chain(n int) []Edge[string] {
	var es []Edge[string]
	for i := 1; i < n; i++ {
		es = append(es, Edge[string]{VertexID(i), VertexID(i + 1), "next"})
	}
	return es
}

func TestFromEdgesBuildsVertices(t *testing.T) {
	g := FromEdges(gctx(), chain(5), "v")
	if g.NumVertices() != 5 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestTriplets(t *testing.T) {
	ctx := gctx()
	g := New(ctx,
		[]Vertex[string]{{1, "a"}, {2, "b"}},
		[]Edge[string]{{1, 2, "knows"}})
	ts := g.Triplets()
	if len(ts) != 1 {
		t.Fatalf("triplets = %d", len(ts))
	}
	tr := ts[0]
	if tr.SrcAttr != "a" || tr.DstAttr != "b" || tr.Attr != "knows" {
		t.Fatalf("triplet = %+v", tr)
	}
}

func TestMapVerticesAndEdges(t *testing.T) {
	g := FromEdges(gctx(), chain(3), 0)
	g2 := MapVertices(g, func(id VertexID, _ int) int { return int(id) * 10 })
	for _, v := range g2.Vertices().Collect() {
		if v.Attr != int(v.ID)*10 {
			t.Fatalf("vertex %d attr = %d", v.ID, v.Attr)
		}
	}
	g3 := MapEdges(g2, func(e Edge[string]) int { return 7 })
	for _, e := range g3.Edges().Collect() {
		if e.Attr != 7 {
			t.Fatalf("edge attr = %d", e.Attr)
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := FromEdges(gctx(), chain(6), "v")
	sub := g.Subgraph(nil, func(id VertexID, _ string) bool { return id <= 3 })
	if sub.NumVertices() != 3 {
		t.Fatalf("vertices = %d", sub.NumVertices())
	}
	// Edge 3->4 must be dropped because 4 is gone.
	if sub.NumEdges() != 2 {
		t.Fatalf("edges = %d", sub.NumEdges())
	}
	sub2 := g.Subgraph(func(tr Triplet[string, string]) bool { return tr.Src != 1 }, nil)
	if sub2.NumEdges() != 4 {
		t.Fatalf("epred edges = %d", sub2.NumEdges())
	}
}

func TestDegrees(t *testing.T) {
	g := FromEdges(gctx(), chain(4), "v")
	deg := g.Degrees()
	if deg[1] != 1 || deg[2] != 2 || deg[4] != 1 {
		t.Fatalf("degrees = %v", deg)
	}
	if g.OutDegrees()[4] != 0 || g.InDegrees()[1] != 0 {
		t.Fatal("chain endpoints have wrong in/out degrees")
	}
}

func TestAggregateMessagesDegreeCount(t *testing.T) {
	ctx := gctx()
	g := FromEdges(ctx, chain(4), 0)
	before := ctx.Snapshot()
	inDeg := AggregateMessages(g, func(c *EdgeContext[int, string, int]) {
		c.SendToDst(1)
	}, func(a, b int) int { return a + b })
	if inDeg[2] != 1 || inDeg[4] != 1 {
		t.Fatalf("inDeg = %v", inDeg)
	}
	if _, ok := inDeg[1]; ok {
		t.Fatal("vertex 1 has no in-edges")
	}
	d := ctx.Snapshot().Diff(before)
	if d.MessagesSent != 3 {
		t.Fatalf("messages = %d, want 3", d.MessagesSent)
	}
}

func TestJoinVertices(t *testing.T) {
	g := FromEdges(gctx(), chain(3), 0)
	msgs := map[VertexID]int{2: 5}
	g2 := JoinVertices(g, msgs, func(_ VertexID, attr, m int) int { return attr + m })
	for _, v := range g2.Vertices().Collect() {
		want := 0
		if v.ID == 2 {
			want = 5
		}
		if v.Attr != want {
			t.Fatalf("vertex %d = %d", v.ID, v.Attr)
		}
	}
}

func TestPregelPropagatesMinimum(t *testing.T) {
	ctx := gctx()
	g := FromEdges(ctx, chain(5), VertexID(0))
	init := MapVertices(g, func(id VertexID, _ VertexID) VertexID { return id })
	res := Pregel(init, VertexID(math.MaxInt64), 0,
		func(_ VertexID, attr, msg VertexID) VertexID {
			if msg < attr {
				return msg
			}
			return attr
		},
		func(tr Triplet[VertexID, string]) []spark.Pair[VertexID, VertexID] {
			if tr.SrcAttr < tr.DstAttr {
				return []spark.Pair[VertexID, VertexID]{{Key: tr.Dst, Value: tr.SrcAttr}}
			}
			return nil
		},
		func(a, b VertexID) VertexID {
			if a < b {
				return a
			}
			return b
		})
	for _, v := range res.Vertices().Collect() {
		if v.Attr != 1 {
			t.Fatalf("vertex %d converged to %d, want 1", v.ID, v.Attr)
		}
	}
	if ctx.Snapshot().Supersteps == 0 {
		t.Fatal("supersteps not metered")
	}
}

func TestPregelMaxIterations(t *testing.T) {
	ctx := gctx()
	g := FromEdges(ctx, chain(10), VertexID(0))
	init := MapVertices(g, func(id VertexID, _ VertexID) VertexID { return id })
	res := Pregel(init, VertexID(math.MaxInt64), 2,
		func(_ VertexID, attr, msg VertexID) VertexID {
			if msg < attr {
				return msg
			}
			return attr
		},
		func(tr Triplet[VertexID, string]) []spark.Pair[VertexID, VertexID] {
			if tr.SrcAttr < tr.DstAttr {
				return []spark.Pair[VertexID, VertexID]{{Key: tr.Dst, Value: tr.SrcAttr}}
			}
			return nil
		},
		func(a, b VertexID) VertexID {
			if a < b {
				return a
			}
			return b
		})
	// After only 2 send rounds, vertex 10 cannot have heard from vertex 1.
	for _, v := range res.Vertices().Collect() {
		if v.ID == 10 && v.Attr == 1 {
			t.Fatal("value propagated too far for 2 iterations")
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	edges := append(chain(3), Edge[string]{10, 11, "x"})
	cc := ConnectedComponents(FromEdges(gctx(), edges, "v"))
	if cc[1] != 1 || cc[2] != 1 || cc[3] != 1 {
		t.Fatalf("component A = %v", cc)
	}
	if cc[10] != 10 || cc[11] != 10 {
		t.Fatalf("component B = %v", cc)
	}
}

func TestConnectedComponentsProperty(t *testing.T) {
	// Property: two vertices in the same chain always share a label.
	f := func(n uint8) bool {
		size := int(n%20) + 2
		cc := ConnectedComponents(FromEdges(gctx(), chain(size), "v"))
		for i := 1; i <= size; i++ {
			if cc[VertexID(i)] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRank(t *testing.T) {
	// Star: everyone points to vertex 1, so 1 must outrank the others.
	edges := []Edge[string]{{2, 1, ""}, {3, 1, ""}, {4, 1, ""}}
	pr := PageRank(FromEdges(gctx(), edges, "v"), 10, 0.85)
	if pr[1] <= pr[2] {
		t.Fatalf("hub rank %f not above leaf %f", pr[1], pr[2])
	}
	if pr[2] != pr[3] || pr[3] != pr[4] {
		t.Fatalf("symmetric leaves differ: %v", pr)
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	g := New(gctx(), []Vertex[string]{}, []Edge[string]{})
	if got := PageRank(g, 5, 0.85); len(got) != 0 {
		t.Fatalf("empty graph ranks = %v", got)
	}
}

func TestTriangleCount(t *testing.T) {
	edges := []Edge[string]{{1, 2, ""}, {2, 3, ""}, {3, 1, ""}, {3, 4, ""}}
	tc := TriangleCount(FromEdges(gctx(), edges, "v"))
	if tc[1] != 1 || tc[2] != 1 || tc[3] != 1 {
		t.Fatalf("triangle counts = %v", tc)
	}
	if tc[4] != 0 {
		t.Fatalf("vertex 4 in %d triangles", tc[4])
	}
}

func TestShortestPaths(t *testing.T) {
	g := FromEdges(gctx(), chain(5), "v")
	sp := ShortestPaths(g, []VertexID{1})
	for i := 1; i <= 5; i++ {
		if got := sp[VertexID(i)][1]; got != i-1 {
			t.Fatalf("dist(%d,1) = %d, want %d", i, got, i-1)
		}
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	edges := append(chain(2), Edge[string]{10, 11, "x"})
	sp := ShortestPaths(FromEdges(gctx(), edges, "v"), []VertexID{1})
	if _, ok := sp[10][1]; ok {
		t.Fatal("vertex 10 should not reach landmark 1")
	}
}
