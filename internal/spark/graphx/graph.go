// Package graphx simulates Spark GraphX: a property graph distributed
// over the spark substrate, the aggregateMessages/Pregel vertex-program
// APIs, and the stock graph algorithms the survey notes GraphX ships
// with (PageRank, connected components, triangle counting, shortest
// paths). The graph-model RDF engines (S2X [23], Kassaie [16],
// Spar(k)ql [12]) are built on this package.
//
// Cost model: every Pregel superstep and every message sent between
// vertices is metered on the owning spark.Context, because the survey's
// assessment of the graph-processing engines is in terms of iteration
// rounds and message traffic.
package graphx

import (
	"fmt"
	"sort"

	"repro/internal/spark"
)

// VertexID identifies a vertex, like org.apache.spark.graphx.VertexId.
type VertexID int64

// Vertex carries a vertex identifier and its property value.
type Vertex[VD any] struct {
	ID   VertexID
	Attr VD
}

// Edge is a directed edge with a property value.
type Edge[ED any] struct {
	Src, Dst VertexID
	Attr     ED
}

// Triplet is an edge together with both endpoint properties, like
// GraphX's EdgeTriplet.
type Triplet[VD, ED any] struct {
	Src     VertexID
	Dst     VertexID
	SrcAttr VD
	DstAttr VD
	Attr    ED
}

// Graph is an immutable property graph. Vertices and edges live in RDDs
// so construction and bulk transforms are metered; message passing
// materializes a vertex index per superstep, which mirrors GraphX's
// replicated vertex views.
type Graph[VD, ED any] struct {
	ctx      *spark.Context
	vertices *spark.RDD[Vertex[VD]]
	edges    *spark.RDD[Edge[ED]]
}

// New builds a graph from explicit vertex and edge lists.
func New[VD, ED any](ctx *spark.Context, vertices []Vertex[VD], edges []Edge[ED]) *Graph[VD, ED] {
	return &Graph[VD, ED]{
		ctx:      ctx,
		vertices: spark.Parallelize(ctx, vertices),
		edges:    spark.Parallelize(ctx, edges),
	}
}

// FromEdges builds a graph from edges alone, giving every referenced
// vertex the default property, like Graph.fromEdges.
func FromEdges[VD, ED any](ctx *spark.Context, edges []Edge[ED], defaultAttr VD) *Graph[VD, ED] {
	seen := make(map[VertexID]bool)
	var vs []Vertex[VD]
	for _, e := range edges {
		if !seen[e.Src] {
			seen[e.Src] = true
			vs = append(vs, Vertex[VD]{e.Src, defaultAttr})
		}
		if !seen[e.Dst] {
			seen[e.Dst] = true
			vs = append(vs, Vertex[VD]{e.Dst, defaultAttr})
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].ID < vs[j].ID })
	return New(ctx, vs, edges)
}

// Context returns the owning spark context.
func (g *Graph[VD, ED]) Context() *spark.Context { return g.ctx }

// Vertices returns the vertex RDD.
func (g *Graph[VD, ED]) Vertices() *spark.RDD[Vertex[VD]] { return g.vertices }

// Edges returns the edge RDD.
func (g *Graph[VD, ED]) Edges() *spark.RDD[Edge[ED]] { return g.edges }

// NumVertices returns the vertex count.
func (g *Graph[VD, ED]) NumVertices() int { return g.vertices.Count() }

// NumEdges returns the edge count.
func (g *Graph[VD, ED]) NumEdges() int { return g.edges.Count() }

// vertexIndex materializes id → attr for local joins during supersteps.
func (g *Graph[VD, ED]) vertexIndex() map[VertexID]VD {
	idx := make(map[VertexID]VD, g.vertices.Count())
	for _, v := range g.vertices.Collect() {
		idx[v.ID] = v.Attr
	}
	return idx
}

// Triplets returns the edge triplets (edge + endpoint attributes).
func (g *Graph[VD, ED]) Triplets() []Triplet[VD, ED] {
	idx := g.vertexIndex()
	ts := make([]Triplet[VD, ED], 0, g.edges.Count())
	for _, e := range g.edges.Collect() {
		ts = append(ts, Triplet[VD, ED]{
			Src: e.Src, Dst: e.Dst,
			SrcAttr: idx[e.Src], DstAttr: idx[e.Dst],
			Attr: e.Attr,
		})
	}
	return ts
}

// MapVertices transforms vertex properties, preserving structure.
func MapVertices[VD, ED, VD2 any](g *Graph[VD, ED], f func(VertexID, VD) VD2) *Graph[VD2, ED] {
	vs := spark.Map(g.vertices, func(v Vertex[VD]) Vertex[VD2] {
		return Vertex[VD2]{v.ID, f(v.ID, v.Attr)}
	})
	return &Graph[VD2, ED]{ctx: g.ctx, vertices: vs, edges: g.edges}
}

// MapEdges transforms edge properties, preserving structure.
func MapEdges[VD, ED, ED2 any](g *Graph[VD, ED], f func(Edge[ED]) ED2) *Graph[VD, ED2] {
	es := spark.Map(g.edges, func(e Edge[ED]) Edge[ED2] {
		return Edge[ED2]{e.Src, e.Dst, f(e)}
	})
	return &Graph[VD, ED2]{ctx: g.ctx, vertices: g.vertices, edges: es}
}

// Subgraph keeps the edges whose triplet satisfies epred and the
// vertices satisfying vpred, like Graph.subgraph. Pass nil to keep all.
// Edges with a dropped endpoint are dropped too.
func (g *Graph[VD, ED]) Subgraph(epred func(Triplet[VD, ED]) bool, vpred func(VertexID, VD) bool) *Graph[VD, ED] {
	idx := g.vertexIndex()
	keepV := g.vertices.Filter(func(v Vertex[VD]) bool {
		return vpred == nil || vpred(v.ID, v.Attr)
	})
	kept := make(map[VertexID]bool, keepV.Count())
	for _, v := range keepV.Collect() {
		kept[v.ID] = true
	}
	keepE := g.edges.Filter(func(e Edge[ED]) bool {
		if !kept[e.Src] || !kept[e.Dst] {
			return false
		}
		if epred == nil {
			return true
		}
		return epred(Triplet[VD, ED]{Src: e.Src, Dst: e.Dst, SrcAttr: idx[e.Src], DstAttr: idx[e.Dst], Attr: e.Attr})
	})
	return &Graph[VD, ED]{ctx: g.ctx, vertices: keepV, edges: keepE}
}

// Degrees returns total degree per vertex (isolated vertices absent).
func (g *Graph[VD, ED]) Degrees() map[VertexID]int {
	deg := make(map[VertexID]int)
	for _, e := range g.edges.Collect() {
		deg[e.Src]++
		deg[e.Dst]++
	}
	return deg
}

// OutDegrees returns out-degree per vertex.
func (g *Graph[VD, ED]) OutDegrees() map[VertexID]int {
	deg := make(map[VertexID]int)
	for _, e := range g.edges.Collect() {
		deg[e.Src]++
	}
	return deg
}

// InDegrees returns in-degree per vertex.
func (g *Graph[VD, ED]) InDegrees() map[VertexID]int {
	deg := make(map[VertexID]int)
	for _, e := range g.edges.Collect() {
		deg[e.Dst]++
	}
	return deg
}

// EdgeContext is passed to the sendMsg function of AggregateMessages; it
// exposes the triplet and collects messages to either endpoint.
type EdgeContext[VD, ED, M any] struct {
	Triplet Triplet[VD, ED]
	toSrc   []M
	toDst   []M
}

// SendToSrc queues a message to the edge's source vertex.
func (c *EdgeContext[VD, ED, M]) SendToSrc(m M) { c.toSrc = append(c.toSrc, m) }

// SendToDst queues a message to the edge's destination vertex.
func (c *EdgeContext[VD, ED, M]) SendToDst(m M) { c.toDst = append(c.toDst, m) }

// AggregateMessages runs sendMsg over every triplet and merges messages
// per destination vertex with mergeMsg, like Graph.aggregateMessages.
// Message traffic is metered on the context.
func AggregateMessages[VD, ED, M any](g *Graph[VD, ED], sendMsg func(*EdgeContext[VD, ED, M]), mergeMsg func(M, M) M) map[VertexID]M {
	idx := g.vertexIndex()
	type delivery struct {
		to  VertexID
		msg M
	}
	deliveries := spark.FlatMap(g.edges, func(e Edge[ED]) []delivery {
		ctx := &EdgeContext[VD, ED, M]{Triplet: Triplet[VD, ED]{
			Src: e.Src, Dst: e.Dst, SrcAttr: idx[e.Src], DstAttr: idx[e.Dst], Attr: e.Attr,
		}}
		sendMsg(ctx)
		out := make([]delivery, 0, len(ctx.toSrc)+len(ctx.toDst))
		for _, m := range ctx.toSrc {
			out = append(out, delivery{e.Src, m})
		}
		for _, m := range ctx.toDst {
			out = append(out, delivery{e.Dst, m})
		}
		return out
	})
	all := deliveries.Collect()
	g.ctx.AddMessages(len(all))
	merged := make(map[VertexID]M)
	has := make(map[VertexID]bool)
	for _, d := range all {
		if has[d.to] {
			merged[d.to] = mergeMsg(merged[d.to], d.msg)
		} else {
			merged[d.to] = d.msg
			has[d.to] = true
		}
	}
	return merged
}

// JoinVertices returns a graph whose vertex attributes are updated by f
// for every vertex with a message; others keep their attribute. Mirrors
// Graph.joinVertices.
func JoinVertices[VD, ED, M any](g *Graph[VD, ED], msgs map[VertexID]M, f func(VertexID, VD, M) VD) *Graph[VD, ED] {
	vs := spark.Map(g.vertices, func(v Vertex[VD]) Vertex[VD] {
		if m, ok := msgs[v.ID]; ok {
			return Vertex[VD]{v.ID, f(v.ID, v.Attr, m)}
		}
		return v
	})
	return &Graph[VD, ED]{ctx: g.ctx, vertices: vs, edges: g.edges}
}

// Pregel runs the bulk-synchronous vertex-program loop of
// GraphX's Pregel operator:
//
//  1. every vertex receives initialMsg and runs vprog;
//  2. each superstep, sendMsg runs on triplets where either endpoint
//     changed last round, messages merge per vertex with mergeMsg, and
//     receiving vertices run vprog;
//  3. the loop stops when no messages flow or maxIterations is reached.
//
// Supersteps and messages are metered on the spark context.
func Pregel[VD comparable, ED, M any](
	g *Graph[VD, ED],
	initialMsg M,
	maxIterations int,
	vprog func(VertexID, VD, M) VD,
	sendMsg func(Triplet[VD, ED]) []spark.Pair[VertexID, M],
	mergeMsg func(M, M) M,
) *Graph[VD, ED] {
	if maxIterations <= 0 {
		maxIterations = 1 << 30
	}
	// Superstep 0: deliver the initial message everywhere.
	cur := MapVertices(g, func(id VertexID, attr VD) VD { return vprog(id, attr, initialMsg) })
	g.ctx.AddSupersteps(1)

	active := make(map[VertexID]bool)
	for _, v := range cur.vertices.Collect() {
		active[v.ID] = true
	}

	for iter := 0; iter < maxIterations; iter++ {
		idx := cur.vertexIndex()
		// Send phase: only triplets touching an active vertex fire.
		type delivery = spark.Pair[VertexID, M]
		deliveries := spark.FlatMap(cur.edges, func(e Edge[ED]) []delivery {
			if !active[e.Src] && !active[e.Dst] {
				return nil
			}
			return sendMsg(Triplet[VD, ED]{Src: e.Src, Dst: e.Dst, SrcAttr: idx[e.Src], DstAttr: idx[e.Dst], Attr: e.Attr})
		})
		all := deliveries.Collect()
		if len(all) == 0 {
			break
		}
		g.ctx.AddSupersteps(1)
		g.ctx.AddMessages(len(all))

		merged := make(map[VertexID]M)
		has := make(map[VertexID]bool)
		for _, d := range all {
			if has[d.Key] {
				merged[d.Key] = mergeMsg(merged[d.Key], d.Value)
			} else {
				merged[d.Key] = d.Value
				has[d.Key] = true
			}
		}

		nextActive := make(map[VertexID]bool)
		next := spark.Map(cur.vertices, func(v Vertex[VD]) Vertex[VD] {
			m, ok := merged[v.ID]
			if !ok {
				return v
			}
			updated := vprog(v.ID, v.Attr, m)
			return Vertex[VD]{v.ID, updated}
		})
		// Determine which vertices changed (drives the next active set).
		prevIdx := idx
		for _, v := range next.Collect() {
			if _, got := merged[v.ID]; got && v.Attr != prevIdx[v.ID] {
				nextActive[v.ID] = true
			}
		}
		cur = &Graph[VD, ED]{ctx: cur.ctx, vertices: next, edges: cur.edges}
		active = nextActive
		if len(active) == 0 {
			break
		}
	}
	return cur
}

// String renders a small graph for debugging.
func (g *Graph[VD, ED]) String() string {
	return fmt.Sprintf("graph(|V|=%d, |E|=%d)", g.NumVertices(), g.NumEdges())
}
