package graphx

import (
	"math"

	"repro/internal/spark"
)

// PageRank runs the classic iterative PageRank for numIter rounds with
// the given damping (reset) factor, like GraphX's staticPageRank.
func PageRank[VD, ED any](g *Graph[VD, ED], numIter int, damping float64) map[VertexID]float64 {
	out := g.OutDegrees()
	ranked := MapVertices(g, func(VertexID, VD) float64 { return 1.0 })
	n := ranked.NumVertices()
	if n == 0 {
		return map[VertexID]float64{}
	}
	for i := 0; i < numIter; i++ {
		contribs := AggregateMessages(ranked, func(c *EdgeContext[float64, ED, float64]) {
			d := out[c.Triplet.Src]
			if d > 0 {
				c.SendToDst(c.Triplet.SrcAttr / float64(d))
			}
		}, func(a, b float64) float64 { return a + b })
		ranked = MapVertices(ranked, func(id VertexID, _ float64) float64 {
			return (1 - damping) + damping*contribs[id]
		})
		ranked.ctx.AddSupersteps(1)
	}
	res := make(map[VertexID]float64, n)
	for _, v := range ranked.Vertices().Collect() {
		res[v.ID] = v.Attr
	}
	return res
}

// ConnectedComponents labels every vertex with the smallest vertex id
// reachable from it (treating edges as undirected), like GraphX's
// connectedComponents, implemented as a Pregel program.
func ConnectedComponents[VD, ED any](g *Graph[VD, ED]) map[VertexID]VertexID {
	init := MapVertices(g, func(id VertexID, _ VD) VertexID { return id })
	result := Pregel(init, VertexID(math.MaxInt64), 0,
		func(id VertexID, attr VertexID, msg VertexID) VertexID {
			if msg < attr {
				return msg
			}
			return attr
		},
		func(t Triplet[VertexID, ED]) []spark.Pair[VertexID, VertexID] {
			var msgs []spark.Pair[VertexID, VertexID]
			if t.SrcAttr < t.DstAttr {
				msgs = append(msgs, spark.Pair[VertexID, VertexID]{Key: t.Dst, Value: t.SrcAttr})
			} else if t.DstAttr < t.SrcAttr {
				msgs = append(msgs, spark.Pair[VertexID, VertexID]{Key: t.Src, Value: t.DstAttr})
			}
			return msgs
		},
		func(a, b VertexID) VertexID {
			if a < b {
				return a
			}
			return b
		})
	res := make(map[VertexID]VertexID)
	for _, v := range result.Vertices().Collect() {
		res[v.ID] = v.Attr
	}
	return res
}

// TriangleCount returns, per vertex, the number of triangles through it
// (edges treated as undirected, deduplicated), like GraphX's
// triangleCount.
func TriangleCount[VD, ED any](g *Graph[VD, ED]) map[VertexID]int {
	neigh := make(map[VertexID]map[VertexID]bool)
	add := func(a, b VertexID) {
		if a == b {
			return
		}
		if neigh[a] == nil {
			neigh[a] = make(map[VertexID]bool)
		}
		neigh[a][b] = true
	}
	for _, e := range g.Edges().Collect() {
		add(e.Src, e.Dst)
		add(e.Dst, e.Src)
	}
	counts := make(map[VertexID]int)
	for v, ns := range neigh {
		for u := range ns {
			if u <= v {
				continue
			}
			for w := range ns {
				if w <= u {
					continue
				}
				if neigh[u][w] {
					counts[v]++
					counts[u]++
					counts[w]++
				}
			}
		}
	}
	return counts
}

// ShortestPaths computes the hop distance from every vertex to each
// landmark (following edges in both directions), like GraphX's
// ShortestPaths, as a Pregel program. Unreachable landmarks are absent
// from a vertex's map.
func ShortestPaths[VD, ED any](g *Graph[VD, ED], landmarks []VertexID) map[VertexID]map[VertexID]int {
	isLandmark := make(map[VertexID]bool, len(landmarks))
	for _, l := range landmarks {
		isLandmark[l] = true
	}
	dist := make(map[VertexID]map[VertexID]int)
	for _, v := range g.Vertices().Collect() {
		m := make(map[VertexID]int)
		if isLandmark[v.ID] {
			m[v.ID] = 0
		}
		dist[v.ID] = m
	}
	// Iterate to fixpoint: relax along both edge directions.
	edges := g.Edges().Collect()
	changed := true
	rounds := 0
	for changed {
		changed = false
		rounds++
		msgs := 0
		for _, e := range edges {
			for _, pair := range [][2]VertexID{{e.Src, e.Dst}, {e.Dst, e.Src}} {
				from, to := pair[0], pair[1]
				for lm, d := range dist[from] {
					if cur, ok := dist[to][lm]; !ok || d+1 < cur {
						dist[to][lm] = d + 1
						changed = true
						msgs++
					}
				}
			}
		}
		g.ctx.AddSupersteps(1)
		g.ctx.AddMessages(msgs)
		if rounds > g.NumVertices()+1 {
			break
		}
	}
	return dist
}
