// Package spark is a deterministic, in-process simulation of the Apache
// Spark execution model, built so that the RDF query engines surveyed by
// Agathangelos et al. (ICDEW 2018) can be reproduced faithfully without a
// JVM cluster.
//
// The simulation keeps the properties the survey's comparisons depend on:
//
//   - datasets are split into partitions and operated on in parallel;
//   - narrow transformations (map, filter) stay within a partition while
//     wide transformations (partitionBy, join, distinct, sortBy) move
//     records across a shuffle boundary;
//   - the partitioner is pluggable (hash, range, or custom), mirroring
//     Spark's RDD-level control over data placement;
//   - broadcast variables ship a small dataset to every executor once;
//   - every shuffle and broadcast is metered, so engines can be compared
//     by the network traffic they would generate on a real cluster.
//
// A Context plays the role of SparkContext: it owns the cluster
// configuration and the metrics ledger for one logical application.
package spark

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Config describes the simulated cluster.
type Config struct {
	// Parallelism is the default number of partitions for new datasets
	// (spark.default.parallelism).
	Parallelism int
	// Executors is the number of executor processes the cluster would
	// run; broadcast cost is counted once per executor.
	Executors int
	// BroadcastThreshold is the row-count threshold below which the SQL
	// layer prefers a broadcast join over a partitioned join
	// (spark.sql.autoBroadcastJoinThreshold, expressed in rows).
	BroadcastThreshold int
	// MaxConcurrency bounds how many partition tasks run at once. Zero
	// means one goroutine per partition.
	MaxConcurrency int
}

// DefaultConfig returns a small laptop-scale cluster: 4 partitions across
// 2 executors with a 10k-row broadcast threshold.
func DefaultConfig() Config {
	return Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 10000, MaxConcurrency: 8}
}

func (c Config) normalized() Config {
	if c.Parallelism <= 0 {
		c.Parallelism = 4
	}
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.BroadcastThreshold <= 0 {
		c.BroadcastThreshold = 10000
	}
	return c
}

// Metrics is the ledger of simulated cluster activity. All counters are
// cumulative for the owning Context; use Snapshot and Diff to meter a
// single query.
type Metrics struct {
	Stages           int64 // wide (shuffle) boundaries crossed
	Tasks            int64 // partition tasks executed
	ShuffleRecords   int64 // records written across shuffle boundaries
	ShuffleBytes     int64 // estimated bytes written across shuffles
	BroadcastRecords int64 // records shipped via broadcast (per executor)
	RecordsRead      int64 // records scanned from source datasets
	Supersteps       int64 // Pregel supersteps executed (graphx)
	MessagesSent     int64 // Pregel/aggregateMessages messages (graphx)
}

// Diff returns m - prev, the activity between two snapshots.
func (m Metrics) Diff(prev Metrics) Metrics {
	return Metrics{
		Stages:           m.Stages - prev.Stages,
		Tasks:            m.Tasks - prev.Tasks,
		ShuffleRecords:   m.ShuffleRecords - prev.ShuffleRecords,
		ShuffleBytes:     m.ShuffleBytes - prev.ShuffleBytes,
		BroadcastRecords: m.BroadcastRecords - prev.BroadcastRecords,
		RecordsRead:      m.RecordsRead - prev.RecordsRead,
		Supersteps:       m.Supersteps - prev.Supersteps,
		MessagesSent:     m.MessagesSent - prev.MessagesSent,
	}
}

func (m Metrics) String() string {
	return fmt.Sprintf("stages=%d tasks=%d shuffleRecords=%d shuffleBytes=%d broadcast=%d read=%d supersteps=%d msgs=%d",
		m.Stages, m.Tasks, m.ShuffleRecords, m.ShuffleBytes, m.BroadcastRecords, m.RecordsRead, m.Supersteps, m.MessagesSent)
}

// Context owns the configuration and metrics of one simulated Spark
// application. It is safe for concurrent use.
type Context struct {
	conf Config

	faultMu     sync.Mutex
	faults      *FaultPlan
	taskRetries atomic.Int64

	stages           atomic.Int64
	tasks            atomic.Int64
	shuffleRecords   atomic.Int64
	shuffleBytes     atomic.Int64
	broadcastRecords atomic.Int64
	recordsRead      atomic.Int64
	supersteps       atomic.Int64
	messagesSent     atomic.Int64
}

// NewContext creates a Context with the given configuration; zero-valued
// fields fall back to DefaultConfig-style values.
func NewContext(conf Config) *Context {
	return &Context{conf: conf.normalized()}
}

// Conf returns the cluster configuration.
func (c *Context) Conf() Config { return c.conf }

// DefaultParallelism returns the default partition count.
func (c *Context) DefaultParallelism() int { return c.conf.Parallelism }

// Snapshot returns the current cumulative metrics.
func (c *Context) Snapshot() Metrics {
	return Metrics{
		Stages:           c.stages.Load(),
		Tasks:            c.tasks.Load(),
		ShuffleRecords:   c.shuffleRecords.Load(),
		ShuffleBytes:     c.shuffleBytes.Load(),
		BroadcastRecords: c.broadcastRecords.Load(),
		RecordsRead:      c.recordsRead.Load(),
		Supersteps:       c.supersteps.Load(),
		MessagesSent:     c.messagesSent.Load(),
	}
}

// ResetMetrics zeroes the ledger. Handy between benchmark iterations.
func (c *Context) ResetMetrics() {
	c.stages.Store(0)
	c.tasks.Store(0)
	c.shuffleRecords.Store(0)
	c.shuffleBytes.Store(0)
	c.broadcastRecords.Store(0)
	c.recordsRead.Store(0)
	c.supersteps.Store(0)
	c.messagesSent.Store(0)
}

// AddSupersteps records Pregel supersteps (used by the graphx package).
func (c *Context) AddSupersteps(n int) { c.supersteps.Add(int64(n)) }

// AddMessages records vertex-program messages (used by the graphx package).
func (c *Context) AddMessages(n int) { c.messagesSent.Add(int64(n)) }

// AddRead records source records scanned.
func (c *Context) AddRead(n int) { c.recordsRead.Add(int64(n)) }

// addShuffle records one shuffle boundary moving n records of b bytes.
func (c *Context) addShuffle(records, bytes int64) {
	c.stages.Add(1)
	c.shuffleRecords.Add(records)
	c.shuffleBytes.Add(bytes)
}

// addBroadcast records a broadcast of n records to every executor.
func (c *Context) addBroadcast(records int) {
	c.broadcastRecords.Add(int64(records * c.conf.Executors))
}

// runTasks executes task(i) for i in [0,n) on a bounded worker pool and
// counts each invocation as one task.
func (c *Context) runTasks(n int, task func(i int)) {
	if n <= 0 {
		return
	}
	c.tasks.Add(int64(n))
	limit := c.conf.MaxConcurrency
	if limit <= 0 || limit > n {
		limit = n
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, limit)
	var abortOnce sync.Once
	var abort any
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			// Stage aborts (task failure beyond max attempts) surface on
			// the driver goroutine, not inside the worker.
			defer func() {
				if r := recover(); r != nil {
					abortOnce.Do(func() { abort = r })
				}
			}()
			c.runAttempts(func() { task(i) })
		}(i)
	}
	wg.Wait()
	if abort != nil {
		panic(abort)
	}
}

// Broadcast ships value-set data to every executor once, like
// SparkContext.broadcast. The returned handle exposes the data read-only.
type Broadcast[T any] struct {
	data []T
}

// Value returns the broadcast dataset. Callers must not modify it.
func (b *Broadcast[T]) Value() []T { return b.data }

// NewBroadcast registers data as a broadcast variable on ctx and meters
// the per-executor shipping cost.
func NewBroadcast[T any](ctx *Context, data []T) *Broadcast[T] {
	ctx.addBroadcast(len(data))
	return &Broadcast[T]{data: data}
}
