package spark

import (
	"fmt"
	"sort"
)

// Partitioner decides which partition a key belongs to, mirroring
// org.apache.spark.Partitioner. Engines supply custom partitioners to
// control data locality (the survey's "Data Partitioning" dimension).
type Partitioner[K comparable] interface {
	// NumPartitions is the number of output partitions.
	NumPartitions() int
	// Partition maps a key to a partition index in [0, NumPartitions).
	Partition(key K) int
	// Describe names the strategy for reports (e.g. "hash", "vertical").
	Describe() string
}

// HashPartitioner is Spark's default: fnv-hash of the key modulo the
// partition count. It is deterministic across runs.
type HashPartitioner[K comparable] struct {
	N int
}

// NewHashPartitioner returns a HashPartitioner with n partitions
// (minimum 1).
func NewHashPartitioner[K comparable](n int) HashPartitioner[K] {
	if n < 1 {
		n = 1
	}
	return HashPartitioner[K]{N: n}
}

// NumPartitions implements Partitioner.
func (p HashPartitioner[K]) NumPartitions() int { return p.N }

// Partition implements Partitioner.
func (p HashPartitioner[K]) Partition(key K) int { return HashKey(key) % p.N }

// Describe implements Partitioner.
func (p HashPartitioner[K]) Describe() string { return "hash" }

// FuncPartitioner adapts a plain function into a Partitioner, for
// workload-aware or semantic placement strategies.
type FuncPartitioner[K comparable] struct {
	N    int
	Name string
	Fn   func(K) int
}

// NumPartitions implements Partitioner.
func (p FuncPartitioner[K]) NumPartitions() int { return p.N }

// Partition implements Partitioner; out-of-range results are clamped by
// modulo so a buggy placement function cannot corrupt the shuffle.
func (p FuncPartitioner[K]) Partition(key K) int {
	i := p.Fn(key) % p.N
	if i < 0 {
		i += p.N
	}
	return i
}

// Describe implements Partitioner.
func (p FuncPartitioner[K]) Describe() string { return p.Name }

// HashKey returns a deterministic non-negative hash for any comparable
// key. Common key types get a fast path; everything else hashes its
// fmt.Sprint rendering, which is stable for value types. The type
// switch inspects a pointer to the key rather than the key itself:
// boxing a stack pointer into an interface does not allocate, whereas
// boxing a string key would heap-allocate on every shuffled record.
func HashKey[K comparable](key K) int {
	switch k := any(&key).(type) {
	case *string:
		return hashString(*k)
	case *int:
		return hashUint64(uint64(*k))
	case *int32:
		return hashUint64(uint64(*k))
	case *int64:
		return hashUint64(uint64(*k))
	case *uint32:
		return hashUint64(uint64(*k))
	case *uint64:
		return hashUint64(*k)
	default:
		return hashKeySlow(key)
	}
}

// hashKeySlow renders uncommon key types; kept out of HashKey so the
// fmt call cannot force the fast path's key to escape.
func hashKeySlow[K comparable](key K) int {
	return hashString(fmt.Sprint(key))
}

// hashString is FNV-1a, inlined so hashing a key allocates nothing
// (hash/fnv's New32a heap-allocates a hasher per call, which used to
// dominate PartitionBy's allocation profile). The values are
// bit-identical to fnv.New32a, so data placement is unchanged.
func hashString(s string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return int(h & 0x7fffffff)
}

func hashUint64(v uint64) int {
	// SplitMix64 finalizer: cheap, well-mixed, deterministic.
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return int(v & 0x7fffffff)
}

// RangePartitioner places keys by comparing against sorted split
// points, like Spark's RangePartitioner: partition i holds the keys in
// (splits[i-1], splits[i]]. It keeps ordered data contiguous, which
// hash partitioning destroys.
type RangePartitioner[K Ordered] struct {
	// Splits are the ascending boundaries; len(Splits)+1 partitions.
	Splits []K
}

// NewRangePartitioner samples the given keys to derive n-1 evenly
// spaced split points for n partitions.
func NewRangePartitioner[K Ordered](keys []K, n int) RangePartitioner[K] {
	if n < 1 {
		n = 1
	}
	sorted := append([]K(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var splits []K
	for i := 1; i < n && len(sorted) > 0; i++ {
		idx := i * len(sorted) / n
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		split := sorted[idx]
		if len(splits) == 0 || splits[len(splits)-1] < split {
			splits = append(splits, split)
		}
	}
	return RangePartitioner[K]{Splits: splits}
}

// NumPartitions implements Partitioner.
func (p RangePartitioner[K]) NumPartitions() int { return len(p.Splits) + 1 }

// Partition implements Partitioner via binary search over the splits.
func (p RangePartitioner[K]) Partition(key K) int {
	lo, hi := 0, len(p.Splits)
	for lo < hi {
		mid := (lo + hi) / 2
		if key <= p.Splits[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Describe implements Partitioner.
func (p RangePartitioner[K]) Describe() string { return "range" }
