package spark

import (
	"sort"
)

// RDD is an immutable, partitioned collection of records — the simulated
// counterpart of org.apache.spark.rdd.RDD. Transformations return new
// RDDs; the input is never mutated. Execution is eager but parallel: each
// transformation runs one task per partition on the context's worker
// pool, which keeps the simulation deterministic while still exercising
// concurrent code paths.
type RDD[T any] struct {
	ctx       *Context
	parts     [][]T
	partDesc  string // how the data is partitioned, for reports
	keyedHint bool   // true when a pair RDD is already key-partitioned
	// placedBy records the Partitioner that produced the current key
	// placement (nil when unknown). Join-like operations compare it to
	// decide whether a side's shuffle can be skipped — the Describe()
	// string alone could be spoofed by a custom partitioner.
	placedBy any
}

// Parallelize distributes data across the context's default parallelism,
// like SparkContext.parallelize.
func Parallelize[T any](ctx *Context, data []T) *RDD[T] {
	return ParallelizeN(ctx, data, ctx.DefaultParallelism())
}

// ParallelizeN distributes data across n partitions using round-robin
// chunking (contiguous ranges, like Spark's ParallelCollectionRDD).
func ParallelizeN[T any](ctx *Context, data []T, n int) *RDD[T] {
	if n < 1 {
		n = 1
	}
	parts := make([][]T, n)
	if len(data) > 0 {
		chunk := (len(data) + n - 1) / n
		for i := 0; i < n; i++ {
			lo := i * chunk
			if lo >= len(data) {
				break
			}
			hi := lo + chunk
			if hi > len(data) {
				hi = len(data)
			}
			parts[i] = append([]T(nil), data[lo:hi]...)
		}
	}
	ctx.AddRead(len(data))
	return &RDD[T]{ctx: ctx, parts: parts, partDesc: "roundrobin"}
}

// fromParts wraps already-partitioned data without copying.
func fromParts[T any](ctx *Context, parts [][]T, desc string) *RDD[T] {
	return &RDD[T]{ctx: ctx, parts: parts, partDesc: desc}
}

// Context returns the owning Context.
func (r *RDD[T]) Context() *Context { return r.ctx }

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return len(r.parts) }

// PartitionDesc names the current partitioning strategy.
func (r *RDD[T]) PartitionDesc() string { return r.partDesc }

// Partition returns a read-only view of partition i.
func (r *RDD[T]) Partition(i int) []T { return r.parts[i] }

// Count returns the number of records.
func (r *RDD[T]) Count() int {
	total := 0
	for _, p := range r.parts {
		total += len(p)
	}
	return total
}

// Collect gathers all records to the driver in partition order.
func (r *RDD[T]) Collect() []T {
	out := make([]T, 0, r.Count())
	for _, p := range r.parts {
		out = append(out, p...)
	}
	return out
}

// Take returns up to n records in partition order.
func (r *RDD[T]) Take(n int) []T {
	out := make([]T, 0, n)
	for _, p := range r.parts {
		for _, v := range p {
			if len(out) == n {
				return out
			}
			out = append(out, v)
		}
	}
	return out
}

// Filter keeps the records matching pred. Narrow transformation.
func (r *RDD[T]) Filter(pred func(T) bool) *RDD[T] {
	out := make([][]T, len(r.parts))
	r.ctx.runTasks(len(r.parts), func(i int) {
		var kept []T
		for _, v := range r.parts[i] {
			if pred(v) {
				kept = append(kept, v)
			}
		}
		out[i] = kept
	})
	nr := fromParts(r.ctx, out, r.partDesc)
	nr.keyedHint = r.keyedHint
	nr.placedBy = r.placedBy
	return nr
}

// Map applies f to every record. Narrow transformation. It is a free
// function because Go methods cannot introduce new type parameters.
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	out := make([][]U, len(r.parts))
	r.ctx.runTasks(len(r.parts), func(i int) {
		mapped := make([]U, len(r.parts[i]))
		for j, v := range r.parts[i] {
			mapped[j] = f(v)
		}
		out[i] = mapped
	})
	return fromParts(r.ctx, out, r.partDesc)
}

// FlatMap applies f and concatenates the results. Narrow transformation.
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	out := make([][]U, len(r.parts))
	r.ctx.runTasks(len(r.parts), func(i int) {
		var exp []U
		for _, v := range r.parts[i] {
			exp = append(exp, f(v)...)
		}
		out[i] = exp
	})
	return fromParts(r.ctx, out, r.partDesc)
}

// MapPartitions transforms each partition wholesale, like
// RDD.mapPartitions. Narrow transformation.
func MapPartitions[T, U any](r *RDD[T], f func(part []T) []U) *RDD[U] {
	out := make([][]U, len(r.parts))
	r.ctx.runTasks(len(r.parts), func(i int) {
		out[i] = f(r.parts[i])
	})
	return fromParts(r.ctx, out, r.partDesc)
}

// Union concatenates two RDDs partition-wise (no shuffle), like
// RDD.union.
func (r *RDD[T]) Union(other *RDD[T]) *RDD[T] {
	parts := make([][]T, 0, len(r.parts)+len(other.parts))
	parts = append(parts, r.parts...)
	parts = append(parts, other.parts...)
	return fromParts(r.ctx, parts, "union")
}

// Distinct removes duplicates via a shuffle on the record value, like
// RDD.distinct. Wide transformation.
func Distinct[T comparable](r *RDD[T]) *RDD[T] {
	keyed := Map(r, func(v T) Pair[T, struct{}] { return Pair[T, struct{}]{v, struct{}{}} })
	reduced := ReduceByKey(keyed, func(a, _ struct{}) struct{} { return a })
	return Map(reduced, func(p Pair[T, struct{}]) T { return p.Key })
}

// SortBy globally sorts the records by the given key with a
// range-partitioned merge, like Spark's sortBy: keys are sampled to
// derive range splits, records are scattered into their range (the one
// shuffle every record crosses), and each range is sorted locally in
// parallel. Concatenating the output partitions in order yields the
// globally sorted sequence; equal keys keep their original relative
// order (stable).
func SortBy[T any, K Ordered](r *RDD[T], key func(T) K) *RDD[T] {
	n := len(r.parts)
	if n < 1 {
		n = 1
	}
	// Sample up to ~20 keys per partition for the range splits.
	samples := make([][]K, len(r.parts))
	r.ctx.runTasks(len(r.parts), func(i int) {
		part := r.parts[i]
		if len(part) == 0 {
			return
		}
		step := len(part)/20 + 1
		keys := make([]K, 0, len(part)/step+1)
		for j := 0; j < len(part); j += step {
			keys = append(keys, key(part[j]))
		}
		samples[i] = keys
	})
	var sampled []K
	for _, s := range samples {
		sampled = append(sampled, s...)
	}
	p := NewRangePartitioner(sampled, n)

	// Scatter into range buckets (the shuffle), then sort each range
	// locally in parallel.
	out, total := scatterMerge(r.ctx, r.parts, p.NumPartitions(), func(v T) int { return p.Partition(key(v)) })
	r.ctx.addShuffle(int64(total), estimateShuffleBytes(r.parts, total))
	r.ctx.runTasks(len(out), func(dst int) {
		part := out[dst]
		sort.SliceStable(part, func(a, b int) bool { return key(part[a]) < key(part[b]) })
	})
	return fromParts(r.ctx, out, "range")
}

// scatterBuckets is the map side of the shuffle: one task per source
// partition places each record into one of m destination buckets.
// Returns the per-source bucket matrix (indexed [source][destination])
// and the record count. Consumers that need plain merged partitions go
// through scatterMerge; consumers that aggregate (GroupByKey's
// reduce-side fold) read the buckets directly and never materialize the
// merged intermediate.
func scatterBuckets[T any](ctx *Context, parts [][]T, m int, place func(T) int) ([][][]T, int) {
	buckets := make([][][]T, len(parts))
	ctx.runTasks(len(parts), func(i int) {
		local := make([][]T, m)
		for _, v := range parts[i] {
			idx := place(v)
			local[idx] = append(local[idx], v)
		}
		buckets[i] = local
	})
	total := 0
	for src := range buckets {
		for _, bucket := range buckets[src] {
			total += len(bucket)
		}
	}
	return buckets, total
}

// scatterMerge is the shared shuffle mechanic under PartitionBy and
// SortBy: scatterBuckets on the map side, then one task per destination
// merges its buckets in source order (keeping placement deterministic
// and merges stable). Returns the merged partitions and the record
// count.
func scatterMerge[T any](ctx *Context, parts [][]T, m int, place func(T) int) ([][]T, int) {
	buckets, total := scatterBuckets(ctx, parts, m, place)
	out := make([][]T, m)
	ctx.runTasks(m, func(dst int) {
		size := 0
		for src := range buckets {
			size += len(buckets[src][dst])
		}
		if size == 0 {
			return
		}
		merged := make([]T, 0, size)
		for src := range buckets {
			merged = append(merged, buckets[src][dst]...)
		}
		out[dst] = merged
	})
	return out, total
}

// Ordered is the constraint for sortable keys.
type Ordered interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64 | ~string
}

// Cartesian returns the cross product of two RDDs, like RDD.cartesian.
// The right side is broadcast to every left partition, which is how the
// survey's hybrid study models the (inefficient) Cartesian fallback.
func Cartesian[T, U any](a *RDD[T], b *RDD[U]) *RDD[Tuple2[T, U]] {
	right := b.Collect()
	a.ctx.addBroadcast(len(right))
	out := make([][]Tuple2[T, U], len(a.parts))
	a.ctx.runTasks(len(a.parts), func(i int) {
		var prod []Tuple2[T, U]
		for _, x := range a.parts[i] {
			for _, y := range right {
				prod = append(prod, Tuple2[T, U]{x, y})
			}
		}
		out[i] = prod
	})
	return fromParts(a.ctx, out, "cartesian")
}
