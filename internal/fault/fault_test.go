package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilPlanIsNoFault(t *testing.T) {
	var p *Plan
	if err := p.Hit(PointMorsel); err != nil {
		t.Fatalf("nil plan injected: %v", err)
	}
	if c := p.Counters(); c != (Counters{}) {
		t.Fatalf("nil plan counted: %+v", c)
	}
	if got := From(context.Background()); got != nil {
		t.Fatalf("From(bare ctx) = %v, want nil", got)
	}
}

func TestFailNextConsumes(t *testing.T) {
	p := NewPlan(1).FailNext(PointScatter, 2)
	for i := 0; i < 2; i++ {
		if err := p.Hit(PointScatter); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := p.Hit(PointScatter); err != nil {
		t.Fatalf("third hit: err = %v, want nil (injections consumed)", err)
	}
	if err := p.Hit(PointMorsel); err != nil {
		t.Fatalf("unarmed point injected: %v", err)
	}
	if c := p.Counters(); c.Failures != 2 || c.Hits != 3 {
		t.Fatalf("counters = %+v, want 2 failures over 3 hits", c)
	}
}

func TestFailAlways(t *testing.T) {
	p := NewPlan(1).FailAlways(ReplicaPoint(2, 1))
	for i := 0; i < 5; i++ {
		if err := p.Hit(ReplicaPoint(2, 1)); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d survived", i)
		}
	}
	if err := p.Hit(ReplicaPoint(2, 0)); err != nil {
		t.Fatalf("sibling replica injected: %v", err)
	}
}

func TestPanicNextCarriesPoint(t *testing.T) {
	p := NewPlan(1).PanicNext(PointMorsel, 1)
	func() {
		defer func() {
			r := recover()
			ip, ok := r.(InjectedPanic)
			if !ok || ip.Point != PointMorsel {
				t.Fatalf("recovered %v, want InjectedPanic{morsel}", r)
			}
		}()
		p.Hit(PointMorsel)
		t.Fatal("armed panic did not fire")
	}()
	if err := p.Hit(PointMorsel); err != nil {
		t.Fatalf("second hit after consumed panic: %v", err)
	}
	if c := p.Counters(); c.Panics != 1 {
		t.Fatalf("panics = %d, want 1", c.Panics)
	}
}

func TestFailRateIsSeedDeterministic(t *testing.T) {
	draw := func(seed int64) []bool {
		p := NewPlan(seed).FailRate(PointScatter, 0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.Hit(PointScatter) != nil
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	saw := false
	for i, c := range draw(7) {
		if c != a[i] {
			saw = true
			break
		}
	}
	if !saw {
		t.Fatal("different seeds produced identical 64-hit schedules")
	}
}

func TestDelayInjectsLatency(t *testing.T) {
	p := NewPlan(1).Delay(PointServer, 30*time.Millisecond)
	start := time.Now()
	if err := p.Hit(PointServer); err != nil {
		t.Fatalf("delay-only point failed: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("hit returned after %v, want >= ~30ms", d)
	}
	if c := p.Counters(); c.Delays != 1 {
		t.Fatalf("delays = %d, want 1", c.Delays)
	}
}

func TestDelayRateIsSeedDeterministic(t *testing.T) {
	draw := func(seed int64) []bool {
		p := NewPlan(seed).DelayRate(PointScatter, 0.5, 100*time.Microsecond)
		out := make([]bool, 64)
		var prev int64
		for i := range out {
			if err := p.Hit(PointScatter); err != nil {
				t.Fatalf("delay-only point failed: %v", err)
			}
			c := p.Counters()
			out[i] = c.Delays > prev
			prev = c.Delays
		}
		return out
	}
	a, b := draw(42), draw(42)
	delayed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			delayed++
		}
	}
	if delayed == 0 || delayed == len(a) {
		t.Fatalf("delayed %d of %d hits at rate 0.5, want a proper subset", delayed, len(a))
	}
	diverged := false
	for i, c := range draw(7) {
		if c != a[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical 64-hit delay schedules")
	}
}

func TestSlowReplicaDelaysOnlyTarget(t *testing.T) {
	p := NewPlan(1).SlowReplica(2, 1, 30*time.Millisecond)
	start := time.Now()
	if err := p.Hit(ReplicaPoint(2, 1)); err != nil {
		t.Fatalf("slow replica failed instead of stalling: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("slow replica answered after %v, want >= ~30ms", d)
	}
	start = time.Now()
	if err := p.Hit(ReplicaPoint(2, 0)); err != nil {
		t.Fatalf("sibling replica: %v", err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("sibling replica stalled %v, want fast", d)
	}
	if c := p.Counters(); c.Delays != 1 {
		t.Fatalf("delays = %d, want 1", c.Delays)
	}
}

func TestContextRoundTrip(t *testing.T) {
	p := NewPlan(1)
	ctx := With(context.Background(), p)
	if got := From(ctx); got != p {
		t.Fatalf("From(With(ctx, p)) = %v, want %v", got, p)
	}
	if got := With(context.Background(), nil); got != context.Background() {
		t.Fatal("With(ctx, nil) must return ctx unchanged")
	}
}
