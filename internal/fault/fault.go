// Package fault provides deterministic, seeded fault injection for the
// native execution engine — the engine-side generalization of the
// simulation substrate's spark.FaultPlan. A Plan arms named fault
// points (fail-next-N, fail-always, seeded fail-rate, panic injection,
// latency injection) and rides a context into an evaluation
// (With/From); the engine hits its points (Hit) at the boundaries where
// a real distributed deployment fails — per-shard replica calls, morsel
// tasks, the HTTP handler — and the fault-tolerance machinery
// (replica failover, morsel re-execution, recovery middleware) is
// exercised exactly as a lost executor or a crashed task would
// exercise it, repeatably.
//
// A nil *Plan is a valid no-fault plan: Hit on nil returns nil, so
// un-instrumented runs pay one pointer check per point.
package fault

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"sync"
	"time"
)

// Point names one fault-injection site in the engine.
type Point string

// The engine's fault points.
const (
	// PointMorsel fires at the start of every morsel task attempt in
	// the parallel evaluator (sparql/parallel.go). An injected panic
	// here simulates a crashed task; the pool recovers and re-runs it.
	PointMorsel Point = "morsel"
	// PointScatter fires once per per-shard op attempt on both the
	// scatter-gather and pushdown routes (sparql/dist.go), before the
	// replica-specific point. Delay here injects scatter latency.
	PointScatter Point = "scatter"
	// PointServer fires at the top of the HTTP query handler
	// (internal/server), inside the recovery middleware.
	PointServer Point = "server"
	// PointMem fires at every memory-budget charge of a budgeted run
	// (sparql/budget.go). An injected failure here forces the charge
	// over budget, so chaos suites exercise the BudgetError abort path
	// deterministically without crafting an actually-huge query.
	PointMem Point = "mem"
)

// ReplicaPoint names the fault point of one shard replica: failing it
// simulates that replica's node being down.
func ReplicaPoint(shard, replica int) Point {
	return Point("replica/" + strconv.Itoa(shard) + "/" + strconv.Itoa(replica))
}

// ErrInjected is the error an armed fault point returns from Hit.
var ErrInjected = errors.New("fault: injected failure")

// InjectedPanic is the value an injected panic carries, so recovery
// layers (and tests) can tell an injected crash from a real bug.
type InjectedPanic struct{ Point Point }

func (p InjectedPanic) String() string {
	return "fault: injected panic at " + string(p.Point)
}

// site is the armed state of one fault point. Counts > 0 consume one
// injection per hit; < 0 inject on every hit.
type site struct {
	failN     int
	panicN    int
	failRate  float64
	delay     time.Duration
	delayRate float64       // probability of a jittered delay per hit
	delayMax  time.Duration // upper bound of the jittered delay
}

// Counters reports what a plan injected so far.
type Counters struct {
	Hits     int64 // Hit calls against armed points
	Failures int64 // ErrInjected returns
	Panics   int64 // injected panics
	Delays   int64 // injected latencies
}

// Plan is one deterministic fault schedule. Arm points with the
// chainable FailNext/FailAlways/FailRate/PanicNext/Delay/DelayRate,
// install it on
// a context with With, and the engine consults it through Hit. All
// methods are safe for concurrent use; the only randomness (FailRate)
// draws from the seeded source, so a plan's behavior is a function of
// its seed and the sequence of hits.
type Plan struct {
	mu    sync.Mutex
	rng   *rand.Rand
	sites map[Point]*site
	c     Counters
}

// NewPlan returns an empty plan whose rate-based injections draw from
// the given seed.
func NewPlan(seed int64) *Plan {
	return &Plan{rng: rand.New(rand.NewSource(seed)), sites: make(map[Point]*site)}
}

func (p *Plan) at(pt Point) *site {
	s := p.sites[pt]
	if s == nil {
		s = &site{}
		p.sites[pt] = s
	}
	return s
}

// FailNext arms pt to return ErrInjected from its next n hits.
func (p *Plan) FailNext(pt Point, n int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.at(pt).failN = n
	return p
}

// FailAlways arms pt to return ErrInjected from every hit.
func (p *Plan) FailAlways(pt Point) *Plan {
	return p.FailNext(pt, -1)
}

// FailRate arms pt to return ErrInjected from each hit independently
// with probability rate, drawn from the plan's seeded source.
func (p *Plan) FailRate(pt Point, rate float64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.at(pt).failRate = rate
	return p
}

// PanicNext arms pt to panic (with an InjectedPanic value) on its next
// n hits; n < 0 panics on every hit.
func (p *Plan) PanicNext(pt Point, n int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.at(pt).panicN = n
	return p
}

// Delay arms pt to sleep d on every hit before deciding anything else.
func (p *Plan) Delay(pt Point, d time.Duration) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.at(pt).delay = d
	return p
}

// DelayRate arms pt to sleep a jittered latency — uniform in (0, d] —
// on each hit independently with probability rate. Both the decision
// and the jitter draw from the plan's seeded source, so a run's
// injected latencies are a deterministic function of the seed and the
// sequence of hits. Composes with Delay: a fixed delay and a jittered
// one add up.
func (p *Plan) DelayRate(pt Point, rate float64, d time.Duration) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.at(pt)
	s.delayRate = rate
	s.delayMax = d
	return p
}

// SlowReplica arms the replica's fault point to sleep d on every hit —
// the straggler injection: the replica stays up and answers correctly,
// just slowly. This is the fault hedged shard operations defend
// against, as opposed to FailAlways(ReplicaPoint(...)), which models
// the replica being down.
func (p *Plan) SlowReplica(shard, replica int, d time.Duration) *Plan {
	return p.Delay(ReplicaPoint(shard, replica), d)
}

// Hit consults the plan at pt: it sleeps the point's injected latency,
// then panics or returns ErrInjected when an injection is armed, in
// that priority order (delay, panic, fail). A nil plan and an un-armed
// point both return nil. Safe for concurrent use.
func (p *Plan) Hit(pt Point) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	s := p.sites[pt]
	if s == nil {
		p.mu.Unlock()
		return nil
	}
	p.c.Hits++
	delay := s.delay
	if s.delayRate > 0 && s.delayMax > 0 && p.rng.Float64() < s.delayRate {
		delay += time.Duration(p.rng.Int63n(int64(s.delayMax))) + 1
	}
	panicNow, failNow := false, false
	switch {
	case s.panicN != 0:
		panicNow = true
		if s.panicN > 0 {
			s.panicN--
		}
	case s.failN != 0:
		failNow = true
		if s.failN > 0 {
			s.failN--
		}
	case s.failRate > 0 && p.rng.Float64() < s.failRate:
		failNow = true
	}
	if delay > 0 {
		p.c.Delays++
	}
	if panicNow {
		p.c.Panics++
	}
	if failNow {
		p.c.Failures++
	}
	p.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if panicNow {
		panic(InjectedPanic{Point: pt})
	}
	if failNow {
		return ErrInjected
	}
	return nil
}

// Counters returns a snapshot of what the plan injected so far.
func (p *Plan) Counters() Counters {
	if p == nil {
		return Counters{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.c
}

type ctxKey struct{}

// With returns a context carrying the plan; the engine's entry points
// pick it up with From. A nil plan returns ctx unchanged.
func With(ctx context.Context, p *Plan) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, p)
}

// From returns the plan installed on ctx, or nil.
func From(ctx context.Context) *Plan {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(ctxKey{}).(*Plan)
	return p
}
