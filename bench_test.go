// Benchmarks regenerating every table and figure of the paper plus the
// assessment experiments its Section V calls for. Run with
//
//	go test -bench=. -benchmem
//
// Custom metrics reported per op:
//
//	shuffleRec/op   records crossing a shuffle boundary
//	broadcast/op    records shipped to executors via broadcast
//	supersteps/op   Pregel/validation rounds (graph engines)
//	scanned/op      triples loaded from storage indexes (SparkRDF)
//	storageRows     rows materialized at load time (S2RDF sweep)
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/evolve"
	"repro/internal/partition"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems"
	"repro/internal/systems/gxsubgraph"
	"repro/internal/systems/haqwa"
	"repro/internal/systems/hybrid"
	"repro/internal/systems/s2rdf"
	"repro/internal/systems/s2x"
	"repro/internal/systems/sparkql"
	"repro/internal/systems/sparkrdf"
	"repro/internal/systems/sparqlgx"
	"repro/internal/workload"
)

func benchConf() spark.Config {
	return spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000, MaxConcurrency: 8}
}

// --- Fig. 1 and Tables I–II (the paper's artifacts) ---

func BenchmarkFig1Taxonomy(b *testing.B) {
	engines := systems.AllEngines(benchConf())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := core.RenderFig1(engines); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTableITaxonomy(b *testing.B) {
	engines := systems.AllEngines(benchConf())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := core.RenderTableI(engines); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIICharacteristics(b *testing.B) {
	engines := systems.AllEngines(benchConf())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := core.RenderTableII(engines); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Assess-A: every engine on every query shape ---

// benchShape runs all engines on the university workload restricted to
// one shape, one sub-benchmark per (engine, query).
func benchShape(b *testing.B, shape sparql.Shape) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	queries := workload.QueriesByShape(workload.UniversityQueries(), shape)
	engines := systems.AllEngines(benchConf())
	for _, e := range engines {
		if err := e.Load(triples); err != nil {
			b.Fatal(err)
		}
	}
	for _, nq := range queries {
		for _, e := range engines {
			// Skip fragments the system does not support (Table II).
			if _, err := e.Execute(nq.Query); err != nil {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", nq.Name, e.Info().Name), func(b *testing.B) {
				before := e.Context().Snapshot()
				for i := 0; i < b.N; i++ {
					if _, err := e.Execute(nq.Query); err != nil {
						b.Fatal(err)
					}
				}
				d := e.Context().Snapshot().Diff(before)
				b.ReportMetric(float64(d.ShuffleRecords)/float64(b.N), "shuffleRec/op")
				b.ReportMetric(float64(d.BroadcastRecords)/float64(b.N), "broadcast/op")
				b.ReportMetric(float64(d.Supersteps)/float64(b.N), "supersteps/op")
			})
		}
	}
}

func BenchmarkAssessStar(b *testing.B)      { benchShape(b, sparql.ShapeStar) }
func BenchmarkAssessLinear(b *testing.B)    { benchShape(b, sparql.ShapeLinear) }
func BenchmarkAssessSnowflake(b *testing.B) { benchShape(b, sparql.ShapeSnowflake) }
func BenchmarkAssessComplex(b *testing.B)   { benchShape(b, sparql.ShapeComplex) }

// --- Assess-B: join-strategy ablation of the hybrid study [21] ---

func BenchmarkJoinStrategies(b *testing.B) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	star := sparql.MustParse(fmt.Sprintf(
		`SELECT ?s ?n ?a WHERE { ?s <%sname> ?n . ?s <%sage> ?a }`, workload.UnivNS, workload.UnivNS))
	linear := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))
	for _, q := range []struct {
		name  string
		query *sparql.Query
	}{{"star", star}, {"linear", linear}} {
		for _, s := range []hybrid.Strategy{hybrid.StrategyHybrid, hybrid.StrategyRDD, hybrid.StrategyDataFrame, hybrid.StrategySparkSQL} {
			e := hybrid.NewWithStrategy(spark.NewContext(benchConf()), s)
			if err := e.Load(triples); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", q.name, s), func(b *testing.B) {
				before := e.Context().Snapshot()
				for i := 0; i < b.N; i++ {
					if _, err := e.Execute(q.query); err != nil {
						b.Fatal(err)
					}
				}
				d := e.Context().Snapshot().Diff(before)
				b.ReportMetric(float64(d.ShuffleRecords)/float64(b.N), "shuffleRec/op")
				b.ReportMetric(float64(d.BroadcastRecords)/float64(b.N), "broadcast/op")
			})
		}
	}
}

// --- Assess-C: ExtVP vs VP join input, and the SF threshold sweep ---

func BenchmarkExtVPvsVP(b *testing.B) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))
	for _, cfg := range []struct {
		name string
		sf   float64
	}{
		{"VP-only", 1e-9}, // threshold so strict that no ExtVP survives
		{"ExtVP", s2rdf.DefaultSelectivityThreshold},
	} {
		e := s2rdf.New(spark.NewContext(benchConf()))
		e.SFThreshold = cfg.sf
		if err := e.Load(triples); err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(e.StorageRows), "storageRows")
		})
	}
}

func BenchmarkExtVPSelectivitySweep(b *testing.B) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	for _, sf := range []float64{0.01, 0.1, 0.25, 0.5, 0.9} {
		sf := sf
		b.Run(fmt.Sprintf("SF=%.2f", sf), func(b *testing.B) {
			var storage float64
			for i := 0; i < b.N; i++ {
				e := s2rdf.New(spark.NewContext(benchConf()))
				e.SFThreshold = sf
				if err := e.Load(triples); err != nil {
					b.Fatal(err)
				}
				storage = e.StorageOverhead()
			}
			b.ReportMetric(storage, "storageOverhead")
		})
	}
}

// --- Assess-D: HAQWA locality, with and without allocation ---

func BenchmarkHAQWALocality(b *testing.B) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	star := sparql.MustParse(fmt.Sprintf(
		`SELECT ?s ?n ?a WHERE { ?s <%sname> ?n . ?s <%sage> ?a }`, workload.UnivNS, workload.UnivNS))
	linear := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))

	cases := []struct {
		name     string
		query    *sparql.Query
		allocate bool
	}{
		{"star", star, false},
		{"linear-unallocated", linear, false},
		{"linear-allocated", linear, true},
	}
	for _, c := range cases {
		e := haqwa.New(spark.NewContext(benchConf()))
		if err := e.Load(triples); err != nil {
			b.Fatal(err)
		}
		if c.allocate {
			e.Allocate([]*sparql.Query{c.query})
		}
		b.Run(c.name, func(b *testing.B) {
			before := e.Context().Snapshot()
			for i := 0; i < b.N; i++ {
				if _, err := e.Execute(c.query); err != nil {
					b.Fatal(err)
				}
			}
			d := e.Context().Snapshot().Diff(before)
			b.ReportMetric(float64(d.ShuffleRecords)/float64(b.N), "shuffleRec/op")
		})
	}
}

// --- Assess-E: graph engines' superstep/message profile per shape ---

func BenchmarkGraphEngines(b *testing.B) {
	triples := workload.GenerateShop(workload.SmallShop())
	queries := []struct {
		name string
		q    *sparql.Query
	}{
		{"star", sparql.MustParse(fmt.Sprintf(
			`SELECT ?p ?price ?cap WHERE { ?p <%sprice> ?price . ?p <%scaption> ?cap }`,
			workload.ShopNS, workload.ShopNS))},
		{"linear", sparql.MustParse(fmt.Sprintf(
			`SELECT ?a ?prod WHERE { ?a <%sfollows> ?b . ?b <%slikes> ?prod }`,
			workload.ShopNS, workload.ShopNS))},
	}
	engines := []core.Engine{
		s2x.New(spark.NewContext(benchConf())),
		gxsubgraph.New(spark.NewContext(benchConf())),
		sparkql.New(spark.NewContext(benchConf())),
	}
	for _, e := range engines {
		if err := e.Load(triples); err != nil {
			b.Fatal(err)
		}
	}
	for _, item := range queries {
		for _, e := range engines {
			b.Run(fmt.Sprintf("%s/%s", item.name, e.Info().Name), func(b *testing.B) {
				before := e.Context().Snapshot()
				for i := 0; i < b.N; i++ {
					if _, err := e.Execute(item.q); err != nil {
						b.Fatal(err)
					}
				}
				d := e.Context().Snapshot().Diff(before)
				b.ReportMetric(float64(d.Supersteps)/float64(b.N), "supersteps/op")
				b.ReportMetric(float64(d.MessagesSent)/float64(b.N), "messages/op")
			})
		}
	}
}

// --- Assess-F: SparkRDF MESG index-level ablation ---

func BenchmarkMESGIndexLevels(b *testing.B) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT ?s ?prof WHERE { ?s <%s> <%sStudent> . ?prof <%s> <%sProfessor> . ?s <%sadvisor> ?prof }`,
		rdf.RDFType, workload.UnivNS, rdf.RDFType, workload.UnivNS, workload.UnivNS))
	for _, lvl := range []sparkrdf.IndexLevel{sparkrdf.Level1, sparkrdf.Level2, sparkrdf.Level3} {
		e := sparkrdf.NewWithLevel(spark.NewContext(benchConf()), lvl)
		if err := e.Load(triples); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("level%d", lvl), func(b *testing.B) {
			e.ScannedTriples = 0
			for i := 0; i < b.N; i++ {
				if _, err := e.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(e.ScannedTriples)/float64(b.N), "scanned/op")
		})
	}
}

// --- Assess-G: partitioner ablation on a mixed workload ---

func BenchmarkPartitioners(b *testing.B) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	mixed := []*sparql.Query{
		sparql.MustParse(fmt.Sprintf(
			`SELECT ?s ?n ?a WHERE { ?s <%sname> ?n . ?s <%sage> ?a }`, workload.UnivNS, workload.UnivNS)),
		sparql.MustParse(fmt.Sprintf(
			`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
			workload.UnivNS, workload.UnivNS)),
	}
	run := func(b *testing.B, e core.Engine) {
		before := e.Context().Snapshot()
		for i := 0; i < b.N; i++ {
			for _, q := range mixed {
				if _, err := e.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
		}
		d := e.Context().Snapshot().Diff(before)
		b.ReportMetric(float64(d.ShuffleRecords)/float64(b.N), "shuffleRec/op")
	}

	b.Run("hash-subject", func(b *testing.B) {
		e := haqwa.New(spark.NewContext(benchConf()))
		if err := e.Load(triples); err != nil {
			b.Fatal(err)
		}
		run(b, e)
	})
	b.Run("vertical", func(b *testing.B) {
		e := sparqlgx.New(spark.NewContext(benchConf()))
		if err := e.Load(triples); err != nil {
			b.Fatal(err)
		}
		run(b, e)
	})
	b.Run("workload-aware", func(b *testing.B) {
		e := haqwa.New(spark.NewContext(benchConf()))
		if err := e.Load(triples); err != nil {
			b.Fatal(err)
		}
		e.Allocate(mixed)
		run(b, e)
	})
}

// --- Assess-H: partitioning-quality ablation (Sec. V direction) ---

func BenchmarkPartitionQuality(b *testing.B) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	linear := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))
	strategies := []partition.Strategy{
		partition.HashSubject{},
		partition.Vertical{},
		partition.Semantic{},
		partition.WorkloadAware{Queries: []*sparql.Query{linear}},
		partition.LabelPropagation{Rounds: 4},
	}
	for _, s := range strategies {
		s := s
		b.Run(s.Name(), func(b *testing.B) {
			var q partition.Quality
			for i := 0; i < b.N; i++ {
				q = partition.Evaluate(s, triples, 4)
			}
			b.ReportMetric(q.EdgeCut, "edgeCut")
			b.ReportMetric(q.Balance, "balance")
			b.ReportMetric(q.StarLocality, "starLocality")
		})
	}
}

// --- Assess-I: versioned (evolving) query answering (Sec. V direction) ---

func BenchmarkVersionedQueryAnswering(b *testing.B) {
	base := workload.GenerateUniversity(workload.SmallUniversity())
	store := evolve.NewStore(base)
	for i := 0; i < 10; i++ {
		s := rdf.NewIRI(fmt.Sprintf("%scommit%d", workload.UnivNS, i))
		if _, err := store.Commit([]rdf.Triple{
			{S: s, P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(workload.UnivNS + "Student")},
		}, nil); err != nil {
			b.Fatal(err)
		}
	}
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT (COUNT(?s) AS ?n) WHERE { ?s <%s> <%sStudent> }`, rdf.RDFType, workload.UnivNS))

	b.Run("query-head", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.QueryAt(store.Head(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("query-v0", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.QueryAt(0, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("diff-v0-head", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := store.DiffResults(0, store.Head(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Reference-evaluator hot path (slot-compiled BGP evaluation) ---

// BenchmarkEvalBGP measures the reference evaluator on the shaped
// university queries of the conformance battery. Every conformance
// test funnels through sparql.Evaluate, so its allocation behavior
// bounds the whole suite. The queries here exercise the slot-compiled
// BGP evaluator plus the id-space solution-modifier pipeline
// (projection, DISTINCT, ORDER BY, LIMIT).
func BenchmarkEvalBGP(b *testing.B) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	g := rdf.NewGraph(triples)
	cases := []struct {
		name  string
		query string
	}{
		{"star", fmt.Sprintf(
			`SELECT ?s ?a ?n WHERE { ?s <%sage> ?a . ?s <%sname> ?n } ORDER BY ?a DESC(?n) LIMIT 7 OFFSET 3`,
			workload.UnivNS, workload.UnivNS)},
		{"linear-3", fmt.Sprintf(
			`SELECT ?st ?univ WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept . ?dept <%ssubOrganizationOf> ?univ }`,
			workload.UnivNS, workload.UnivNS, workload.UnivNS)},
		{"snowflake", fmt.Sprintf(
			`SELECT ?st ?sn ?pn WHERE { ?st <%sname> ?sn . ?st <%sadvisor> ?prof . ?prof <%sname> ?pn . ?prof <%sworksFor> ?dept }`,
			workload.UnivNS, workload.UnivNS, workload.UnivNS, workload.UnivNS)},
		{"distinct-order-limit", fmt.Sprintf(
			`SELECT DISTINCT ?a WHERE { ?s <%sage> ?a } ORDER BY ?a LIMIT 5`, workload.UnivNS)},
	}
	for _, c := range cases {
		q := sparql.MustParse(c.query)
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sparql.Evaluate(q, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalFullDecode tracks the decode-bound evaluator path:
// queries whose whole solution sequence must be materialized as
// map-based Bindings (the Results contract), so allocations scale
// with the number of result rows no matter how lean the id-space
// evaluation is.
func BenchmarkEvalFullDecode(b *testing.B) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	g := rdf.NewGraph(triples)
	cases := []struct {
		name  string
		query string
	}{
		{"star-2", fmt.Sprintf(
			`SELECT ?s ?n ?a WHERE { ?s <%sname> ?n . ?s <%sage> ?a }`,
			workload.UnivNS, workload.UnivNS)},
		{"bound-subject", fmt.Sprintf(
			`SELECT ?p ?o WHERE { <%suniv0.dept0.stud0> ?p ?o }`, workload.UnivNS)},
	}
	for _, c := range cases {
		q := sparql.MustParse(c.query)
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sparql.Evaluate(q, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
