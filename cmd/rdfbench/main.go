// Command rdfbench runs the cross-system assessment: every surveyed
// engine over a shaped query workload, with answers verified against
// the reference evaluator and cluster activity metered per query.
//
// Usage:
//
//	rdfbench                      # university workload, small scale
//	rdfbench -dataset shop        # WatDiv-style workload
//	rdfbench -scale medium        # benchmark-scale dataset
//	rdfbench -shape star          # only one query shape
//	rdfbench -engine S2RDF        # only one system
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems"
	"repro/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "university", "dataset: university | shop")
	scale := flag.String("scale", "small", "scale: small | medium")
	shape := flag.String("shape", "", "restrict to one shape: star | linear | snowflake | complex")
	engine := flag.String("engine", "", "restrict to one system name")
	csv := flag.Bool("csv", false, "emit CSV instead of the text report")
	parallelism := flag.Int("parallelism", 4, "simulated partitions")
	executors := flag.Int("executors", 2, "simulated executors")
	flag.Parse()

	conf := spark.Config{
		Parallelism:        *parallelism,
		Executors:          *executors,
		BroadcastThreshold: 1000,
		MaxConcurrency:     8,
	}

	var triples = buildDataset(*dataset, *scale)
	var queries []workload.NamedQuery
	switch *dataset {
	case "university":
		queries = workload.UniversityQueries()
	case "shop":
		queries = workload.ShopQueries()
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if *shape != "" {
		var s sparql.Shape
		switch *shape {
		case "star":
			s = sparql.ShapeStar
		case "linear":
			s = sparql.ShapeLinear
		case "snowflake":
			s = sparql.ShapeSnowflake
		case "complex":
			s = sparql.ShapeComplex
		default:
			fmt.Fprintf(os.Stderr, "unknown shape %q\n", *shape)
			os.Exit(2)
		}
		queries = workload.QueriesByShape(queries, s)
	}

	engines := systems.AllEngines(conf)
	if *engine != "" {
		var kept []core.Engine
		for _, e := range engines {
			if e.Info().Name == *engine {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
			os.Exit(2)
		}
		engines = kept
	}

	w := core.Workload{Name: *dataset + "/" + *scale, Triples: triples}
	for _, nq := range queries {
		w.AddQuery(nq.Name, nq.Query)
	}
	a, err := core.RunAssessment(engines, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(core.RenderAssessmentCSV(a))
		return
	}
	fmt.Print(core.RenderAssessment(a))
}

func buildDataset(dataset, scale string) []rdf.Triple {
	switch dataset + "/" + scale {
	case "university/small":
		return workload.GenerateUniversity(workload.SmallUniversity())
	case "university/medium":
		return workload.GenerateUniversity(workload.MediumUniversity())
	case "shop/small":
		return workload.GenerateShop(workload.SmallShop())
	case "shop/medium":
		return workload.GenerateShop(workload.MediumShop())
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset/scale %s/%s\n", dataset, scale)
		os.Exit(2)
		return nil
	}
}
