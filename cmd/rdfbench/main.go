// Command rdfbench runs the cross-system assessment: every surveyed
// engine over a shaped query workload, with answers verified against
// the reference evaluator and cluster activity metered per query.
//
// Usage:
//
//	rdfbench                      # university workload, small scale
//	rdfbench -dataset shop        # WatDiv-style workload
//	rdfbench -scale medium        # benchmark-scale dataset
//	rdfbench -shape star          # only one query shape
//	rdfbench -engine S2RDF        # only one system
//	rdfbench -shards 4            # partition-strategy latency comparison
//	rdfbench -shards 4 -trace     # + per-query span breakdown
//	rdfbench -shards 4 -json out.json  # + machine-readable trajectory entry
//
// With -shards N the engine assessment is replaced by the
// partition-strategy comparison: the dataset is sharded N-way under
// every registered placement strategy and each workload query runs
// end-to-end through the distributed executor, so the report pairs the
// static placement scores (balance, edge cut, star locality) with the
// measured query latency (p50/p95/p99 over -repeat runs, so tail
// behavior is visible) and the route each query took (p = pushdown,
// s = scatter-gather). Adding -trace runs each query once more under
// execution tracing and reports where its time went — scan, join,
// gather (shard fan-out and merge), and result serialization self
// times — as extra columns in both the table and -csv outputs. Adding
// -json FILE writes the same measurements (plus per-run allocation
// counts and each query's plan fingerprint) as one self-describing
// JSON document, the benchmark-trajectory entry committed PR-over-PR
// as BENCH_*.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/rdf"
	"repro/internal/shard"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems"
	"repro/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "university", "dataset: university | shop")
	scale := flag.String("scale", "small", "scale: small | medium")
	shape := flag.String("shape", "", "restrict to one shape: star | linear | snowflake | complex")
	engine := flag.String("engine", "", "restrict to one system name")
	csv := flag.Bool("csv", false, "emit CSV instead of the text report")
	parallelism := flag.Int("parallelism", 4, "simulated partitions")
	executors := flag.Int("executors", 2, "simulated executors")
	shards := flag.Int("shards", 0, "compare partition strategies end-to-end over N shards instead of assessing engines")
	repeat := flag.Int("repeat", 3, "runs per query in -shards mode (p50/p95/p99 reported)")
	trace := flag.Bool("trace", false, "in -shards mode, add a per-query span breakdown (scan/join/gather/serialize self times)")
	jsonPath := flag.String("json", "", "in -shards mode, also write the measurements as one machine-readable JSON trajectory entry to this file")
	flag.Parse()

	conf := spark.Config{
		Parallelism:        *parallelism,
		Executors:          *executors,
		BroadcastThreshold: 1000,
		MaxConcurrency:     8,
	}

	var triples = buildDataset(*dataset, *scale)
	var queries []workload.NamedQuery
	switch *dataset {
	case "university":
		queries = workload.UniversityQueries()
	case "shop":
		queries = workload.ShopQueries()
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if *shape != "" {
		var s sparql.Shape
		switch *shape {
		case "star":
			s = sparql.ShapeStar
		case "linear":
			s = sparql.ShapeLinear
		case "snowflake":
			s = sparql.ShapeSnowflake
		case "complex":
			s = sparql.ShapeComplex
		default:
			fmt.Fprintf(os.Stderr, "unknown shape %q\n", *shape)
			os.Exit(2)
		}
		queries = workload.QueriesByShape(queries, s)
	}

	if *shards > 0 {
		runShardBench(triples, queries, *dataset+"/"+*scale, *shards, *repeat, *csv, *trace, *jsonPath)
		return
	}
	if *trace {
		fmt.Fprintln(os.Stderr, "-trace needs -shards mode")
		os.Exit(2)
	}
	if *jsonPath != "" {
		fmt.Fprintln(os.Stderr, "-json needs -shards mode")
		os.Exit(2)
	}

	engines := systems.AllEngines(conf)
	if *engine != "" {
		var kept []core.Engine
		for _, e := range engines {
			if e.Info().Name == *engine {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
			os.Exit(2)
		}
		engines = kept
	}

	w := core.Workload{Name: *dataset + "/" + *scale, Triples: triples}
	for _, nq := range queries {
		w.AddQuery(nq.Name, nq.Query)
	}
	a, err := core.RunAssessment(engines, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(core.RenderAssessmentCSV(a))
		return
	}
	fmt.Print(core.RenderAssessment(a))
}

// runShardBench is the -shards mode: for every registered partition
// strategy, shard the dataset, score the placement, and run each
// workload query end-to-end through the distributed executor —
// latency per strategy, not just load-balance/edge-cut scores. Each
// query runs repeat times and the report shows the p50/p95/p99 of the
// sample, so tail behavior (stragglers, hedging) is visible, not just
// the best case. With csvOut the same measurements stream as one CSV
// row per (strategy, query) pair, ready for spreadsheet or pandas
// post-processing.
func runShardBench(triples []rdf.Triple, queries []workload.NamedQuery, datasetLabel string, nShards, repeat int, csvOut, traceOn bool, jsonPath string) {
	if repeat < 1 {
		repeat = 1
	}
	var entries []benchEntry
	ctx := context.Background()
	var parsed []*sparql.Query
	for _, nq := range queries {
		parsed = append(parsed, nq.Query)
	}
	deduped := rdf.Dedupe(triples)
	if csvOut {
		header := "strategy,subject_colocated,balance,edge_cut,star_locality,query,route,shards_touched,shards,p50_ms,p95_ms,p99_ms,rows"
		if traceOn {
			header += ",scan_ms,join_ms,gather_ms,serialize_ms"
		}
		fmt.Println(header)
	} else {
		fmt.Printf("partition-strategy comparison: %d triples, %d shards, percentiles over %d runs\n\n",
			len(deduped), nShards, repeat)
	}
	for _, name := range partition.Names() {
		strat, err := partition.ByName(name, partition.WithQueries(parsed...))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// One Place call feeds both the quality scores and the shards
		// (label propagation is expensive enough to matter).
		place := strat.Place(deduped, nShards)
		quality := partition.EvaluatePlacement(deduped, place, nShards)
		sg, err := shard.BuildPlaced(deduped, place, nShards, strat.Name())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !csvOut {
			fmt.Printf("%-26s %s  subject-colocated=%v\n", name, quality, sg.SubjectColocated())
		}
		var total time.Duration
		for _, nq := range queries {
			sp := sg.PrepareQuery(nq.Query)
			var st sparql.ShardStats
			samples := make([]time.Duration, 0, repeat)
			rows := 0
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			for r := 0; r < repeat; r++ {
				start := time.Now()
				res, err := sp.Run(ctx, sparql.WithShardStats(&st))
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s on %s: %v\n", nq.Name, name, err)
					os.Exit(1)
				}
				samples = append(samples, time.Since(start))
				rows = res.Len()
			}
			runtime.ReadMemStats(&ms1)
			allocsPerRun := (ms1.Mallocs - ms0.Mallocs) / uint64(repeat)
			allocBytesPerRun := (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(repeat)
			p50 := percentileMs(samples, 50)
			p95 := percentileMs(samples, 95)
			p99 := percentileMs(samples, 99)
			route := "s"
			if st.Route == sparql.RoutePushdown {
				route = "p"
			}
			total += time.Duration(p50 * float64(time.Millisecond))
			var bd breakdown
			if traceOn {
				bd = traceQuery(ctx, sp)
			}
			if jsonPath != "" {
				entries = append(entries, benchEntry{
					Strategy:      name,
					Query:         nq.Name,
					Shape:         sparql.ClassifyShape(nq.Query).String(),
					Fingerprint:   sparql.FingerprintQuery(nq.Query),
					Route:         route,
					ShardsTouched: st.ShardsTouched,
					Shards:        st.Shards,
					P50Ms:         p50,
					P95Ms:         p95,
					P99Ms:         p99,
					Rows:          rows,
					AllocsPerRun:  allocsPerRun,
					AllocBytes:    allocBytesPerRun,
				})
			}
			if csvOut {
				fmt.Printf("%s,%v,%.4f,%.4f,%.4f,%s,%s,%d,%d,%.3f,%.3f,%.3f,%d",
					name, sg.SubjectColocated(),
					quality.Balance, quality.EdgeCut, quality.StarLocality,
					nq.Name, route, st.ShardsTouched, st.Shards,
					p50, p95, p99, rows)
				if traceOn {
					fmt.Printf(",%.3f,%.3f,%.3f,%.3f", bd.scan, bd.join, bd.gather, bd.serialize)
				}
				fmt.Println()
				continue
			}
			fmt.Printf("  %-16s p50=%8.2fms p95=%8.2fms p99=%8.2fms  route=%s shards=%d/%d  rows=%d",
				nq.Name, p50, p95, p99, route,
				st.ShardsTouched, st.Shards, rows)
			if traceOn {
				fmt.Printf("  scan=%.2fms join=%.2fms gather=%.2fms serialize=%.2fms",
					bd.scan, bd.join, bd.gather, bd.serialize)
			}
			fmt.Println()
		}
		if !csvOut {
			fmt.Printf("  %-16s p50=%8.2fms\n\n", "TOTAL", float64(total.Microseconds())/1000)
		}
	}
	if jsonPath != "" {
		if err := writeBenchJSON(jsonPath, datasetLabel, nShards, repeat, entries); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// benchEntry is one (strategy, query) measurement in the -json output
// — the benchmark-trajectory record accumulated across PRs as
// BENCH_*.json files at the repository root.
type benchEntry struct {
	Strategy      string  `json:"strategy"`
	Query         string  `json:"query"`
	Shape         string  `json:"shape"`
	Fingerprint   string  `json:"fingerprint"`
	Route         string  `json:"route"` // p = pushdown, s = scatter-gather
	ShardsTouched int     `json:"shards_touched"`
	Shards        int     `json:"shards"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	Rows          int     `json:"rows"`
	AllocsPerRun  uint64  `json:"allocs_per_run"`
	AllocBytes    uint64  `json:"alloc_bytes_per_run"`
}

// writeBenchJSON renders one self-describing trajectory entry: the
// run's provenance (dataset, sharding, repeat count, Go version,
// timestamp) plus every measurement.
func writeBenchJSON(path, datasetLabel string, nShards, repeat int, entries []benchEntry) error {
	doc := map[string]any{
		"generated":  time.Now().UTC().Format(time.RFC3339),
		"dataset":    datasetLabel,
		"shards":     nShards,
		"repeat":     repeat,
		"go_version": runtime.Version(),
		"results":    entries,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// percentileMs returns the nearest-rank p-th percentile of the
// samples, in milliseconds. The samples slice is not modified.
func percentileMs(samples []time.Duration, p int) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return float64(sorted[idx-1].Microseconds()) / 1000
}

// breakdown is one traced query's self-time split, in milliseconds.
type breakdown struct {
	scan, join, gather, serialize float64
}

// traceQuery runs one extra traced execution and buckets every span's
// self time into the report's categories: scans (seed and extension
// passes), joins (including OPTIONAL), gather (shard scatter/pushdown
// fan-out and merge), plus the time to render the result table.
func traceQuery(ctx context.Context, sp *shard.Prepared) breakdown {
	tr := obs.New("query")
	res, err := sp.Run(ctx, sparql.WithTrace(tr))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	serStart := time.Now()
	_ = res.String()
	var bd breakdown
	bd.serialize = float64(time.Since(serStart).Microseconds()) / 1000
	tr.Finish()
	tr.Root().Walk(func(s *obs.Span, _ int) {
		ms := float64(s.SelfTime().Microseconds()) / 1000
		switch s.Name {
		case "seed_scan", "match":
			bd.scan += ms
		case "join", "optional":
			bd.join += ms
		case "scatter", "pushdown", "gather":
			bd.gather += ms
		}
	})
	return bd
}

func buildDataset(dataset, scale string) []rdf.Triple {
	switch dataset + "/" + scale {
	case "university/small":
		return workload.GenerateUniversity(workload.SmallUniversity())
	case "university/medium":
		return workload.GenerateUniversity(workload.MediumUniversity())
	case "shop/small":
		return workload.GenerateShop(workload.SmallShop())
	case "shop/medium":
		return workload.GenerateShop(workload.MediumShop())
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset/scale %s/%s\n", dataset, scale)
		os.Exit(2)
		return nil
	}
}
