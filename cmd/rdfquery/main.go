// Command rdfquery answers one SPARQL query over an RDF file
// (N-Triples, or Turtle for .ttl files) with a chosen engine (or the
// reference evaluator), printing the bindings table and the simulated
// cluster activity.
//
// Usage:
//
//	rdfquery -data data.nt -query 'SELECT ?s WHERE { ?s ?p ?o }'
//	rdfquery -data data.nt -queryfile q.rq -engine S2RDF
//	rdfquery -data data.nt -query '...' -engine reference
//	echo 'ASK { ?s ?p ?o }' | rdfquery -data data.nt -queryfile -
//	rdfquery -data data.nt -queryfile q.rq -repeat 100   # one Prepared plan
//	rdfquery -data data.nt -query '...' -explain         # EXPLAIN ANALYZE tree
//	rdfquery -data data.nt -query '...' -trace           # self-time breakdown + top spans
//	rdfquery -engines    # list available engines
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems"
)

func main() {
	dataPath := flag.String("data", "", "RDF input file (.nt N-Triples, .ttl Turtle)")
	queryText := flag.String("query", "", "SPARQL query text")
	queryFile := flag.String("queryfile", "", "file holding the SPARQL query, or - for stdin")
	engineName := flag.String("engine", "reference", "engine name or 'reference'")
	repeat := flag.Int("repeat", 1, "run the query N times reusing one prepared plan")
	timeout := flag.Duration("timeout", 0, "per-run deadline for the reference evaluator (0 = none)")
	explain := flag.Bool("explain", false, "print the EXPLAIN ANALYZE span tree after the results (reference engine only)")
	trace := flag.Bool("trace", false, "print a traced self-time breakdown (scan/join/serialize) and top spans after the results (reference engine only)")
	list := flag.Bool("engines", false, "list engine names and exit")
	flag.Parse()

	conf := spark.DefaultConfig()
	if *list {
		for _, e := range systems.AllEngines(conf) {
			info := e.Info()
			fmt.Printf("%-12s %s, %s, partitioning=%s, fragment=%s\n",
				info.Name, info.Model, info.Abstractions[0], info.Partitioning, info.SPARQL)
		}
		return
	}

	if *dataPath == "" {
		fail("missing -data")
	}
	text := *queryText
	if text == "" && *queryFile != "" {
		var raw []byte
		var err error
		if *queryFile == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(*queryFile)
		}
		if err != nil {
			fail(err.Error())
		}
		text = string(raw)
	}
	if text == "" {
		fail("missing -query or -queryfile")
	}
	if *repeat < 1 {
		fail("-repeat must be >= 1")
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()
	var triples []rdf.Triple
	if strings.HasSuffix(*dataPath, ".ttl") {
		triples, err = rdf.ParseTurtle(f)
	} else {
		triples, err = rdf.ParseNTriples(f)
	}
	if err != nil {
		fail("parsing data: " + err.Error())
	}
	// Prepare once: -repeat reuses the same plan for every run, the
	// compile-once/run-many contract the query service is built on.
	prep, err := sparql.Prepare(text)
	if err != nil {
		fail("parsing query: " + err.Error())
	}
	q := prep.Query()
	fmt.Printf("loaded %d triples; query shape: %s\n", len(triples), sparql.ClassifyShape(q))

	if *engineName == "reference" {
		g := rdf.NewGraph(triples)
		var res *sparql.Results
		var tr *obs.Trace
		start := time.Now()
		for i := 0; i < *repeat; i++ {
			ctx, cancel := context.Background(), context.CancelFunc(func() {})
			if *timeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, *timeout)
			}
			var opts []sparql.RunOption
			if *explain || *trace {
				// A fresh trace per run; the printed tree is the last
				// run's, the one the timing footer also reflects best.
				tr = obs.New("query")
				opts = append(opts, sparql.WithTrace(tr))
			}
			res, err = prep.Run(ctx, g, opts...)
			cancel()
			if tr != nil {
				tr.Finish()
			}
			if err != nil {
				fail(err.Error())
			}
		}
		elapsed := time.Since(start)
		fmt.Print(res.String())
		if *explain {
			fmt.Print(tr.Text())
		}
		if *trace {
			printTraceSummary(tr, prep.Fingerprint())
		}
		if *repeat > 1 {
			fmt.Printf("%d runs of one prepared plan in %v (%v/run)\n",
				*repeat, elapsed.Round(time.Microsecond), (elapsed / time.Duration(*repeat)).Round(time.Microsecond))
		}
		return
	}
	if *explain {
		fail("-explain needs the reference engine")
	}
	if *trace {
		fail("-trace needs the reference engine")
	}
	for _, e := range systems.AllEngines(conf) {
		if e.Info().Name != *engineName {
			continue
		}
		if err := e.Load(triples); err != nil {
			fail(err.Error())
		}
		before := e.Context().Snapshot()
		var res *sparql.Results
		start := time.Now()
		for i := 0; i < *repeat; i++ {
			res, err = e.Execute(q)
			if err != nil {
				fail(err.Error())
			}
		}
		elapsed := time.Since(start)
		fmt.Print(res.String())
		if *repeat > 1 {
			fmt.Printf("%d runs in %v (%v/run)\n",
				*repeat, elapsed.Round(time.Microsecond), (elapsed / time.Duration(*repeat)).Round(time.Microsecond))
		}
		fmt.Printf("cluster activity: %s\n", e.Context().Snapshot().Diff(before))
		return
	}
	fail("unknown engine " + *engineName + " (try -engines)")
}

// printTraceSummary renders the last run's trace the way rdfbench
// -trace does for sharded runs: self time bucketed into scan / join /
// other, then the top spans by self time, plus the query's plan
// fingerprint (the key into a server's /debug/shapes registry).
func printTraceSummary(tr *obs.Trace, fingerprint string) {
	var scan, join, other float64
	tr.Root().Walk(func(s *obs.Span, _ int) {
		ms := float64(s.SelfTime().Microseconds()) / 1000
		switch s.Name {
		case "seed_scan", "match":
			scan += ms
		case "join", "optional":
			join += ms
		default:
			other += ms
		}
	})
	fmt.Printf("trace: scan=%.3fms join=%.3fms other=%.3fms  fingerprint=%s\n",
		scan, join, other, fingerprint)
	for _, sp := range tr.TopSelf(5) {
		fmt.Printf("  %-24s %8.3fms\n", sp.Name, sp.SelfMs)
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "rdfquery:", msg)
	os.Exit(1)
}
