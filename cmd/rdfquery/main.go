// Command rdfquery answers one SPARQL query over an RDF file
// (N-Triples, or Turtle for .ttl files) with a chosen engine (or the
// reference evaluator), printing the bindings table and the simulated
// cluster activity.
//
// Usage:
//
//	rdfquery -data data.nt -query 'SELECT ?s WHERE { ?s ?p ?o }'
//	rdfquery -data data.nt -queryfile q.rq -engine S2RDF
//	rdfquery -data data.nt -query '...' -engine reference
//	rdfquery -engines    # list available engines
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems"
)

func main() {
	dataPath := flag.String("data", "", "RDF input file (.nt N-Triples, .ttl Turtle)")
	queryText := flag.String("query", "", "SPARQL query text")
	queryFile := flag.String("queryfile", "", "file holding the SPARQL query")
	engineName := flag.String("engine", "reference", "engine name or 'reference'")
	list := flag.Bool("engines", false, "list engine names and exit")
	flag.Parse()

	conf := spark.DefaultConfig()
	if *list {
		for _, e := range systems.AllEngines(conf) {
			info := e.Info()
			fmt.Printf("%-12s %s, %s, partitioning=%s, fragment=%s\n",
				info.Name, info.Model, info.Abstractions[0], info.Partitioning, info.SPARQL)
		}
		return
	}

	if *dataPath == "" {
		fail("missing -data")
	}
	text := *queryText
	if text == "" && *queryFile != "" {
		raw, err := os.ReadFile(*queryFile)
		if err != nil {
			fail(err.Error())
		}
		text = string(raw)
	}
	if text == "" {
		fail("missing -query or -queryfile")
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()
	var triples []rdf.Triple
	if strings.HasSuffix(*dataPath, ".ttl") {
		triples, err = rdf.ParseTurtle(f)
	} else {
		triples, err = rdf.ParseNTriples(f)
	}
	if err != nil {
		fail("parsing data: " + err.Error())
	}
	q, err := sparql.Parse(text)
	if err != nil {
		fail("parsing query: " + err.Error())
	}
	fmt.Printf("loaded %d triples; query shape: %s\n", len(triples), sparql.ClassifyShape(q))

	if *engineName == "reference" {
		res, err := sparql.Evaluate(q, rdf.NewGraph(triples))
		if err != nil {
			fail(err.Error())
		}
		fmt.Print(res.String())
		return
	}
	for _, e := range systems.AllEngines(conf) {
		if e.Info().Name != *engineName {
			continue
		}
		if err := e.Load(triples); err != nil {
			fail(err.Error())
		}
		before := e.Context().Snapshot()
		res, err := e.Execute(q)
		if err != nil {
			fail(err.Error())
		}
		fmt.Print(res.String())
		fmt.Printf("cluster activity: %s\n", e.Context().Snapshot().Diff(before))
		return
	}
	fail("unknown engine " + *engineName + " (try -engines)")
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "rdfquery:", msg)
	os.Exit(1)
}
