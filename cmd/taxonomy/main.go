// Command taxonomy regenerates the paper's Figure 1 and Tables I–II
// from the engines' self-descriptions.
//
// Usage:
//
//	taxonomy           # print all three artifacts
//	taxonomy -fig1     # only Figure 1
//	taxonomy -table1   # only Table I
//	taxonomy -table2   # only Table II
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/spark"
	"repro/internal/systems"
)

func main() {
	fig1 := flag.Bool("fig1", false, "print Figure 1 (dimension taxonomy)")
	table1 := flag.Bool("table1", false, "print Table I (data model x abstraction)")
	table2 := flag.Bool("table2", false, "print Table II (system characteristics)")
	flag.Parse()

	all := !*fig1 && !*table1 && !*table2
	engines := systems.NewRegistry(spark.DefaultConfig()).Engines()

	if all || *fig1 {
		fmt.Println("Fig. 1: dimensions for organizing RDF query processing methods")
		fmt.Println(core.RenderFig1(engines))
	}
	if all || *table1 {
		fmt.Println(core.RenderTableI(engines))
	}
	if all || *table2 {
		fmt.Println(core.RenderTableII(engines))
	}
}
