// Command rdfserve runs the SPARQL query service: it loads an RDF
// dataset (from a file, or a generated benchmark dataset), warms the
// evaluator's shared structures, and serves the SPARQL protocol over
// HTTP with a prepared-plan cache, bounded concurrency, per-query
// deadlines, morsel-driven intra-query parallelism (see
// -query-parallelism), and streaming JSON/TSV results.
//
// Usage:
//
//	rdfserve -data data.nt -addr :8080
//	rdfserve -dataset university -scale medium     # generated data
//	rdfserve -data data.ttl -engine S2RDF          # surveyed engine
//	rdfserve -dataset university -shards 4 -partition hash-subject
//	rdfserve -dataset university -shards 4 -replicas 2
//
// With -shards N the dataset is split into N shard graphs around a
// shared dictionary (the -partition strategy decides placement) and
// queries execute through the distributed evaluator: subject-star
// queries push down whole to subject-co-located shards, everything
// else runs scatter-gather with shard pruning. Results are
// byte-identical to unsharded serving; /stats gains a sharding block.
//
// With -replicas R each shard is materialized R times and per-shard
// work fails over between replicas (circuit breakers, retry with
// backoff) without changing results; -chaos-fail-replica I fails
// replica I of every shard through an injected fault plan, the live
// demonstration that serving survives a downed replica (watch the
// /stats faults block).
//
// Tail-latency flags: -hedge-delay launches each shard scan on a
// second replica once the first runs past the delay (negative picks
// an adaptive per-operation p95 delay), -speculation re-dispatches
// morsel tasks running far past the run's median task time, and
// -breaker-trip / -breaker-cooldown tune the replica circuit
// breakers; -chaos-slow-replica delays one replica index of every
// shard by -chaos-slow-delay, the live straggler demonstration
// (watch the hedges counters in /stats and /metrics).
//
// The process drains gracefully: on SIGTERM/SIGINT it stops accepting
// connections, lets in-flight queries finish within the default query
// deadline, and exits 0.
//
// Endpoints: /sparql (GET ?query=..., POST form or
// application/sparql-query), /healthz, /stats, /metrics (Prometheus
// text exposition), /debug/queries (retained trace index; append a
// request id for one span tree), /debug/shapes (plan-fingerprint
// registry), /debug/dash (live HTML dashboard). Useful /sparql
// parameters: format=json|tsv, timeout=500ms, explain=analyze (answer
// with the EXPLAIN ANALYZE span tree instead of results).
//
// Observability flags: -debug-addr serves the pprof profiling
// endpoints on a separate listener (kept off the query port);
// -slow-query-threshold arms per-query tracing and logs queries
// slower than the threshold as JSON lines to -slow-query-log
// (default stderr); -trace-sample N traces 1 in N queries and parks
// their span trees in the -trace-ring sized history behind
// /debug/queries; -max-shapes bounds the fingerprint registry.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/rdf"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/spark"
	"repro/internal/systems"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataPath := flag.String("data", "", "RDF input file (.nt N-Triples, .ttl Turtle)")
	dataset := flag.String("dataset", "", "generate a dataset instead: university | shop")
	scale := flag.String("scale", "small", "generated dataset scale: small | medium")
	engineName := flag.String("engine", "reference", "engine name or 'reference'")
	shards := flag.Int("shards", 0, "split the graph into N shards (0 = unsharded)")
	replicas := flag.Int("replicas", 1, "copies of each shard (failover targets; needs -shards)")
	partitionName := flag.String("partition", "hash-subject", "shard placement strategy (see internal/partition)")
	maxConcurrent := flag.Int("max-concurrent", 8, "queries evaluating at once")
	queryParallelism := flag.Int("query-parallelism", 0, "morsel workers per query (0 = GOMAXPROCS, 1 = serial)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested timeouts")
	cacheSize := flag.Int("plan-cache", 256, "prepared-plan LRU capacity (negative disables)")
	maxResultRows := flag.Int("max-result-rows", 0, "abort queries producing more rows than this (0 = unlimited)")
	maxQueryBytes := flag.Int64("max-query-bytes", 0, "per-query memory budget in bytes; over-budget queries abort with 413 (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "queries that may wait for a worker before new arrivals are shed (0 = 4x max-concurrent, negative disables shedding)")
	chaosReplica := flag.Int("chaos-fail-replica", -1, "fail this replica index of every shard (chaos demo; needs -replicas > 1)")
	chaosSlowReplica := flag.Int("chaos-slow-replica", -1, "slow this replica index of every shard (chaos demo; needs -replicas > 1)")
	chaosSlowDelay := flag.Duration("chaos-slow-delay", 50*time.Millisecond, "added latency for -chaos-slow-replica")
	hedgeDelay := flag.Duration("hedge-delay", 0, "hedge shard operations after this delay (>0 fixed, <0 adaptive p95, 0 off; needs -replicas > 1)")
	speculation := flag.Float64("speculation", 0, "re-dispatch morsel tasks running this many times the median task time (0 disables; e.g. 3 = 3x median)")
	breakerTrip := flag.Int("breaker-trip", 0, "consecutive replica failures that trip its circuit breaker (0 = default)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long a tripped replica breaker stays open (0 = default)")
	debugAddr := flag.String("debug-addr", "", "serve pprof profiling endpoints on this separate address (empty disables)")
	slowThreshold := flag.Duration("slow-query-threshold", 0, "trace every query and log ones slower than this as JSON lines (0 disables)")
	slowLogPath := flag.String("slow-query-log", "", "slow-query log file, appended (default stderr; needs -slow-query-threshold)")
	traceSample := flag.Int("trace-sample", 128, "trace 1 in N queries and retain their span trees for /debug/queries (0 disables sampling)")
	traceRing := flag.Int("trace-ring", 64, "completed traces retained for /debug/queries (newest evicts oldest)")
	maxShapes := flag.Int("max-shapes", 512, "distinct query shapes tracked by the fingerprint registry (LRU beyond)")
	flag.Parse()

	triples, err := loadTriples(*dataPath, *dataset, *scale)
	if err != nil {
		fail(err.Error())
	}

	cfg := server.Config{
		MaxConcurrent:        *maxConcurrent,
		DefaultTimeout:       *timeout,
		MaxTimeout:           *maxTimeout,
		PlanCacheSize:        *cacheSize,
		QueryParallelism:     *queryParallelism,
		MaxResultRows:        *maxResultRows,
		MaxQueryBytes:        *maxQueryBytes,
		MaxQueue:             *maxQueue,
		SlowQueryThreshold:   *slowThreshold,
		HedgeDelay:           *hedgeDelay,
		SpeculationFactor:    *speculation,
		BreakerTripThreshold: *breakerTrip,
		BreakerCooldown:      *breakerCooldown,
		TraceSampleRate:      *traceSample,
		TraceRingSize:        *traceRing,
		MaxShapes:            *maxShapes,
	}
	if *slowLogPath != "" {
		if *slowThreshold <= 0 {
			fail("-slow-query-log needs -slow-query-threshold > 0")
		}
		f, err := os.OpenFile(*slowLogPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fail(err.Error())
		}
		defer f.Close()
		cfg.SlowQueryLog = f
	}
	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}
	if *chaosReplica >= 0 {
		if *shards <= 0 || *replicas < 2 {
			fail("-chaos-fail-replica needs -shards > 0 and -replicas > 1 (a lone replica would lose every query)")
		}
		if *chaosReplica >= *replicas {
			fail(fmt.Sprintf("-chaos-fail-replica %d out of range (replicas 0..%d)", *chaosReplica, *replicas-1))
		}
		plan := fault.NewPlan(1)
		for s := 0; s < *shards; s++ {
			plan.FailAlways(fault.ReplicaPoint(s, *chaosReplica))
		}
		cfg.FaultPlan = plan
	}
	if *chaosSlowReplica >= 0 {
		if *shards <= 0 || *replicas < 2 {
			fail("-chaos-slow-replica needs -shards > 0 and -replicas > 1 (with a lone replica there is nowhere to hedge)")
		}
		if *chaosSlowReplica >= *replicas {
			fail(fmt.Sprintf("-chaos-slow-replica %d out of range (replicas 0..%d)", *chaosSlowReplica, *replicas-1))
		}
		if *chaosSlowDelay <= 0 {
			fail("-chaos-slow-delay must be > 0")
		}
		if cfg.FaultPlan == nil {
			cfg.FaultPlan = fault.NewPlan(1)
		}
		for s := 0; s < *shards; s++ {
			cfg.FaultPlan.SlowReplica(s, *chaosSlowReplica, *chaosSlowDelay)
		}
	}

	var srv *server.Server
	if *shards > 0 {
		if *engineName != "reference" {
			fail("-shards requires the reference engine")
		}
		sg, err := shard.BuildReplicatedByName(triples, *partitionName, *shards, *replicas)
		if err != nil {
			fail(err.Error())
		}
		srv = server.NewSharded(sg, cfg)
		log.Printf("rdfserve: %d triples sharded %d-way by %s (replicas %d, sizes %v, subject-colocated %v), serving on %s",
			sg.Len(), sg.NumShards(), sg.Strategy(), sg.Replicas(), sg.ShardSizes(), sg.SubjectColocated(), *addr)
		serve(*addr, srv.Handler(), cfg.DefaultTimeout, *maxTimeout)
		return
	}
	if *replicas != 1 {
		fail("-replicas needs -shards > 0")
	}
	g := rdf.NewGraph(triples)
	if *engineName == "reference" {
		srv = server.New(g, cfg)
	} else {
		eng := findEngine(*engineName)
		if eng == nil {
			fail("unknown engine " + *engineName + " (see rdfquery -engines)")
		}
		if err := eng.Load(g.Triples()); err != nil {
			fail("loading engine: " + err.Error())
		}
		srv = server.NewWithEngine(g, eng, cfg)
	}

	log.Printf("rdfserve: %d triples loaded, engine=%s, serving on %s", g.Len(), *engineName, *addr)
	serve(*addr, srv.Handler(), cfg.DefaultTimeout, *maxTimeout)
}

// serve runs the HTTP server until SIGTERM/SIGINT, then drains
// gracefully: the listener closes immediately (no new queries), queries
// already in flight get up to drain to finish, and the process exits 0.
//
// The server carries protective timeouts so one slow or stalled client
// cannot pin a connection goroutine forever: header and body reads are
// bounded, idle keep-alive connections are reaped, and the write
// deadline leaves maxTimeout (the cap on any query's deadline) plus
// streaming slack before a wedged response is cut off.
func serve(addr string, h http.Handler, drain, maxTimeout time.Duration) {
	hs := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      maxTimeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errCh:
		// Listener died without a signal (port in use, ...).
		fail(err.Error())
	case sig := <-sigCh:
		log.Printf("rdfserve: %v received, draining in-flight queries (up to %v)", sig, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("rdfserve: drain incomplete: %v", err)
			hs.Close()
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err.Error())
		}
		log.Printf("rdfserve: drained, bye")
	}
}

// serveDebug exposes the pprof profiling endpoints on their own
// listener and mux, deliberately separate from the query port so
// profiling is never reachable through whatever fronts /sparql (and so
// nothing here registers on http.DefaultServeMux).
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("rdfserve: pprof on http://%s/debug/pprof/", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("rdfserve: debug listener: %v", err)
	}
}

// loadTriples reads the dataset from a file or generates a synthetic
// one (exactly the rdfgen datasets, handy for smoke tests).
func loadTriples(dataPath, dataset, scale string) ([]rdf.Triple, error) {
	switch {
	case dataPath != "":
		f, err := os.Open(dataPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(dataPath, ".ttl") {
			return rdf.ParseTurtle(f)
		}
		return rdf.ParseNTriples(f)
	case dataset == "university":
		cfg := workload.SmallUniversity()
		if scale == "medium" {
			cfg = workload.MediumUniversity()
		}
		return workload.GenerateUniversity(cfg), nil
	case dataset == "shop":
		cfg := workload.SmallShop()
		if scale == "medium" {
			cfg = workload.MediumShop()
		}
		return workload.GenerateShop(cfg), nil
	default:
		return nil, fmt.Errorf("need -data FILE or -dataset university|shop")
	}
}

func findEngine(name string) core.Engine {
	for _, e := range systems.AllEngines(spark.DefaultConfig()) {
		if e.Info().Name == name {
			return e
		}
	}
	return nil
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "rdfserve:", msg)
	os.Exit(1)
}
