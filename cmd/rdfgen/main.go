// Command rdfgen writes one of the synthetic benchmark datasets to a
// file (or stdout) in N-Triples, for use with rdfquery or external
// tools.
//
// Usage:
//
//	rdfgen -dataset university -scale medium -out data.nt
//	rdfgen -dataset shop                       # small shop to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/rdf"
	"repro/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "university", "dataset: university | shop")
	scale := flag.String("scale", "small", "scale: small | medium")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var triples []rdf.Triple
	switch *dataset {
	case "university":
		cfg := workload.SmallUniversity()
		if *scale == "medium" {
			cfg = workload.MediumUniversity()
		}
		cfg.Seed = *seed
		triples = workload.GenerateUniversity(cfg)
	case "shop":
		cfg := workload.SmallShop()
		if *scale == "medium" {
			cfg = workload.MediumShop()
		}
		cfg.Seed = *seed
		triples = workload.GenerateShop(cfg)
	default:
		fmt.Fprintf(os.Stderr, "rdfgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rdf.WriteNTriples(w, triples); err != nil {
		fmt.Fprintln(os.Stderr, "rdfgen:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "rdfgen: wrote %d triples to %s\n", len(triples), *out)
	}
}
