// Quickstart: generate a small RDF dataset, load it into one of the
// surveyed engines (S2RDF), run a SPARQL query, and print the answers
// together with the simulated cluster activity.
package main

import (
	"fmt"
	"log"

	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/s2rdf"
	"repro/internal/workload"
)

func main() {
	// 1. A simulated Spark cluster: 4 partitions over 2 executors.
	ctx := spark.NewContext(spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000})

	// 2. A LUBM-style university dataset (deterministic).
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	fmt.Printf("dataset: %d triples, %d predicates\n",
		len(triples), rdf.ComputeStats(triples).DistinctPredicates)

	// 3. Load it into S2RDF — this builds the VP and ExtVP tables.
	engine := s2rdf.New(ctx)
	if err := engine.Load(triples); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S2RDF materialized %d ExtVP tables, storage overhead %.2fx\n",
		engine.ExtVPTableCount(), engine.StorageOverhead())

	// 4. Ask which students are advised by professors of department 0.
	query := sparql.MustParse(fmt.Sprintf(`
		SELECT ?student ?prof WHERE {
			?student <%sadvisor> ?prof .
			?prof <%sworksFor> <%suniv0.dept0>
		} ORDER BY ?student LIMIT 5`,
		workload.UnivNS, workload.UnivNS, workload.UnivNS))

	before := ctx.Snapshot()
	res, err := engine.Execute(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery shape: %s\n", sparql.ClassifyShape(query))
	fmt.Print(res.String())
	fmt.Printf("\ncluster activity: %s\n", ctx.Snapshot().Diff(before))
}
