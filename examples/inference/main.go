// Inference: materializes the RDFS entailment of a dataset with a
// schema (the survey's Sec. II background: "RDF Schema ... includes a
// set of inference rules used to generate new, implicit triples from
// explicit ones"), then shows a query whose answers exist only in the
// entailed graph.
package main

import (
	"fmt"
	"log"

	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/sparqlgx"
	"repro/internal/workload"
)

func main() {
	base := workload.GenerateUniversity(workload.SmallUniversity())

	// A small RDFS schema over the university vocabulary.
	u := func(s string) rdf.Term { return rdf.NewIRI(workload.UnivNS + s) }
	schema := []rdf.Triple{
		{S: u("Student"), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: u("Person")},
		{S: u("Professor"), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: u("Person")},
		{S: u("Person"), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: u("Agent")},
		{S: u("advisor"), P: rdf.NewIRI(rdf.RDFSSubPropertyOf), O: u("knows")},
		{S: u("teacherOf"), P: rdf.NewIRI(rdf.RDFSDomain), O: u("Teacher")},
	}
	full := append(append([]rdf.Triple{}, base...), schema...)

	entailed := rdf.Materialize(full)
	fmt.Printf("explicit triples: %d, after RDFS materialization: %d (+%d entailed)\n",
		len(full), len(entailed), len(entailed)-len(full))

	engine := sparqlgx.New(spark.NewContext(spark.DefaultConfig()))
	if err := engine.Load(entailed); err != nil {
		log.Fatal(err)
	}

	// ?x knows ?y holds only via rdfs7 (advisor subPropertyOf knows),
	// and Person/Agent memberships only via rdfs9/rdfs11.
	for _, text := range []string{
		fmt.Sprintf(`SELECT (COUNT(?x) AS ?n) WHERE { ?x <%sknows> ?y }`, workload.UnivNS),
		fmt.Sprintf(`SELECT (COUNT(?x) AS ?n) WHERE { ?x <%s> <%sAgent> }`, rdf.RDFType, workload.UnivNS),
		fmt.Sprintf(`SELECT (COUNT(?x) AS ?n) WHERE { ?x <%s> <%sTeacher> }`, rdf.RDFType, workload.UnivNS),
	} {
		res, err := engine.Execute(sparql.MustParse(text))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-70s => %s\n", text, res.Rows[0]["n"].Value)
	}
}
