// Starqueries: demonstrates HAQWA's locality guarantees — the reason
// the survey highlights hash-by-subject fragmentation. Star queries run
// with zero shuffle out of the box; linear queries shuffle unless the
// workload-aware allocation has replicated the link targets.
package main

import (
	"fmt"
	"log"

	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/haqwa"
	"repro/internal/workload"
)

func main() {
	triples := workload.GenerateUniversity(workload.MediumUniversity())

	star := sparql.MustParse(fmt.Sprintf(
		`SELECT ?s ?n ?a WHERE { ?s <%sname> ?n . ?s <%sage> ?a }`,
		workload.UnivNS, workload.UnivNS))
	linear := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))

	run := func(label string, e *haqwa.Engine, q *sparql.Query) {
		before := e.Context().Snapshot()
		res, err := e.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		d := e.Context().Snapshot().Diff(before)
		fmt.Printf("%-34s %6d rows   shuffle=%-6d stages=%d\n",
			label, res.Len(), d.ShuffleRecords, d.Stages)
	}

	// Plain hash fragmentation.
	e1 := haqwa.New(spark.NewContext(spark.DefaultConfig()))
	if err := e1.Load(triples); err != nil {
		log.Fatal(err)
	}
	fmt.Println("HAQWA, hash-by-subject fragmentation only:")
	run("  star (name+age)", e1, star)
	run("  linear (advisor->worksFor)", e1, linear)

	// With the workload-aware allocation step for the linear query.
	e2 := haqwa.New(spark.NewContext(spark.DefaultConfig()))
	if err := e2.Load(triples); err != nil {
		log.Fatal(err)
	}
	e2.Allocate([]*sparql.Query{linear})
	fmt.Println("\nHAQWA, after workload-aware allocation of the linear query:")
	run("  star (name+age)", e2, star)
	run("  linear (advisor->worksFor)", e2, linear)

	fmt.Println("\nThe allocation replicates advisor-link targets into each")
	fmt.Println("subject's partition, so the registered query form becomes as")
	fmt.Println("local as a star — the trade-off HAQWA proposes between data")
	fmt.Println("distribution complexity and query answering efficiency.")
}
