// Partitioning: compares the three triple-model storage layouts of the
// survey on one bounded-predicate join — hash-by-subject (HAQWA),
// vertical partitioning (SPARQLGX), and extended vertical partitioning
// (S2RDF) — reporting records read, shuffle volume, and ExtVP's join
// input reduction, plus the SF-threshold storage trade-off.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/haqwa"
	"repro/internal/systems/s2rdf"
	"repro/internal/systems/sparqlgx"
	"repro/internal/workload"
)

func main() {
	triples := workload.GenerateUniversity(workload.MediumUniversity())
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))

	engines := []core.Engine{
		haqwa.New(spark.NewContext(spark.DefaultConfig())),
		sparqlgx.New(spark.NewContext(spark.DefaultConfig())),
		s2rdf.New(spark.NewContext(spark.DefaultConfig())),
	}
	fmt.Printf("dataset: %d triples; query: linear advisor→worksFor join\n\n", len(triples))
	fmt.Printf("%-10s %-20s %12s %12s %10s\n", "system", "partitioning", "recordsRead", "shuffleRec", "time")
	for _, e := range engines {
		if err := e.Load(triples); err != nil {
			log.Fatal(err)
		}
		m := core.RunQuery(e, "linear", q, nil)
		if m.Err != nil {
			log.Fatal(m.Err)
		}
		fmt.Printf("%-10s %-20s %12d %12d %10s\n",
			e.Info().Name, e.Info().Partitioning,
			m.Activity.RecordsRead, m.Activity.ShuffleRecords, m.Duration.Round(10000))
	}

	// The ExtVP storage/selectivity trade-off (S2RDF Sec. IV.A.2).
	fmt.Println("\nS2RDF ExtVP selectivity-factor threshold sweep:")
	fmt.Printf("%8s %14s %16s\n", "SF", "extvp tables", "storage overhead")
	for _, sf := range []float64{0.05, 0.25, 0.5, 0.9} {
		e := s2rdf.New(spark.NewContext(spark.DefaultConfig()))
		e.SFThreshold = sf
		if err := e.Load(triples); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.2f %14d %15.2fx\n", sf, e.ExtVPTableCount(), e.StorageOverhead())
	}
}
