// Graphmatch: runs the three GraphX-based engines (S2X, the subgraph
// matcher of Kassaie, and Spar(k)ql) plus the GraphFrames engine on
// star and linear queries, showing how each trades supersteps and
// messages for shuffle — the cost profile of the survey's graph
// processing category.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/gframes"
	"repro/internal/systems/gxsubgraph"
	"repro/internal/systems/s2x"
	"repro/internal/systems/sparkql"
	"repro/internal/workload"
)

func main() {
	triples := workload.GenerateShop(workload.MediumShop())
	queries := []struct {
		label string
		q     *sparql.Query
	}{
		{"star: price+caption", sparql.MustParse(fmt.Sprintf(
			`SELECT ?p ?price ?cap WHERE { ?p <%sprice> ?price . ?p <%scaption> ?cap }`,
			workload.ShopNS, workload.ShopNS))},
		{"linear: follows->likes", sparql.MustParse(fmt.Sprintf(
			`SELECT ?a ?prod WHERE { ?a <%sfollows> ?b . ?b <%slikes> ?prod }`,
			workload.ShopNS, workload.ShopNS))},
		{"linear-3: follows->follows->likes", sparql.MustParse(fmt.Sprintf(
			`SELECT ?a ?prod WHERE { ?a <%sfollows> ?b . ?b <%sfollows> ?c . ?c <%slikes> ?prod }`,
			workload.ShopNS, workload.ShopNS, workload.ShopNS))},
	}

	engines := []core.Engine{
		s2x.New(spark.NewContext(spark.DefaultConfig())),
		gxsubgraph.New(spark.NewContext(spark.DefaultConfig())),
		sparkql.New(spark.NewContext(spark.DefaultConfig())),
		gframes.New(spark.NewContext(spark.DefaultConfig())),
	}
	for _, e := range engines {
		if err := e.Load(triples); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("dataset: %d triples (WatDiv-style shop)\n", len(triples))
	for _, item := range queries {
		fmt.Printf("\n%s\n", item.label)
		fmt.Printf("  %-12s %8s %12s %12s %12s\n", "system", "rows", "supersteps", "messages", "shuffleRec")
		for _, e := range engines {
			m := core.RunQuery(e, item.label, item.q, nil)
			if m.Err != nil {
				log.Fatalf("%s: %v", e.Info().Name, m.Err)
			}
			fmt.Printf("  %-12s %8d %12d %12d %12d\n",
				e.Info().Name, m.Rows, m.Activity.Supersteps, m.Activity.MessagesSent, m.Activity.ShuffleRecords)
		}
	}
}
