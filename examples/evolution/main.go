// Evolution: the survey's closing direction (Sec. V) — evolving RDF
// data queried in an uninterrupted manner, with access to previous
// versions. A versioned store accumulates commits while a Live server
// (backed by the S2RDF engine) keeps answering; cross-version delta
// queries show which answers appeared or disappeared.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/evolve"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/s2rdf"
	"repro/internal/workload"
)

func main() {
	base := workload.GenerateUniversity(workload.SmallUniversity())
	store := evolve.NewStore(base)

	live, err := evolve.NewLive(store, func() core.Engine {
		return s2rdf.New(spark.NewContext(spark.DefaultConfig()))
	})
	if err != nil {
		log.Fatal(err)
	}

	q := sparql.MustParse(fmt.Sprintf(
		`SELECT (COUNT(?s) AS ?n) WHERE { ?s <%s> <%sStudent> }`,
		rdf.RDFType, workload.UnivNS))
	show := func(label string) {
		res, v, err := live.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s version=%d students=%s\n", label, v, res.Rows[0]["n"].Value)
	}

	show("initial load")

	// A new student enrolls; the old version keeps serving until refresh.
	newStudent := rdf.NewIRI(workload.UnivNS + "univ0.dept0.studNEW")
	enroll := []rdf.Triple{
		{S: newStudent, P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(workload.UnivNS + "Student")},
		{S: newStudent, P: rdf.NewIRI(workload.UnivNS + "name"), O: rdf.NewLiteral("New Student")},
	}
	if _, err := store.Commit(enroll, nil); err != nil {
		log.Fatal(err)
	}
	show("after commit, before refresh (old data)")
	if err := live.Refresh(); err != nil {
		log.Fatal(err)
	}
	show("after refresh")

	// A student drops out in version 2.
	drop := rdf.Triple{
		S: rdf.NewIRI(workload.UnivNS + "univ0.dept0.stud0"),
		P: rdf.NewIRI(rdf.RDFType),
		O: rdf.NewIRI(workload.UnivNS + "Student"),
	}
	if _, err := store.Commit(nil, []rdf.Triple{drop}); err != nil {
		log.Fatal(err)
	}
	if err := live.Refresh(); err != nil {
		log.Fatal(err)
	}
	show("after dropout commit + refresh")

	// Previous versions stay queryable, and deltas are first-class.
	all := sparql.MustParse(fmt.Sprintf(
		`SELECT ?s WHERE { ?s <%s> <%sStudent> }`, rdf.RDFType, workload.UnivNS))
	appeared, disappeared, err := store.DiffResults(0, store.Head(), all)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nversion 0 -> %d student-set delta: +%d -%d\n", store.Head(), len(appeared), len(disappeared))
	for _, row := range appeared {
		fmt.Println("  appeared:   ", row)
	}
	for _, row := range disappeared {
		fmt.Println("  disappeared:", row)
	}
}
